//! Natural loops and loop nesting depth.
//!
//! The paper's ranks encode loop structure *implicitly* through reverse
//! postorder, but tests and the interpreter's sanity checks want the
//! explicit structure: back edges (edges whose target dominates their
//! source), the natural loop of each back edge, and a per-block nesting
//! depth. Forward propagation's known hazard — pushing an expression into a
//! loop (§4.2) — is diagnosed with this information too.

use crate::dom::Dominators;
use crate::graph::Cfg;
use epre_ir::BlockId;

/// A natural loop: its header plus the set of blocks that reach the back
/// edge's source without passing through the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
}

/// Loop structure of a function: all natural loops and per-block nesting
/// depths.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    loops: Vec<NaturalLoop>,
    depth: Vec<u32>,
}

impl LoopInfo {
    /// Identify natural loops from back edges (dominator-based). Loops
    /// sharing a header are merged, as is conventional.
    pub fn new(cfg: &Cfg, dom: &Dominators) -> Self {
        let n = cfg.len();
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (src, dst) in cfg.edges() {
            if dom.is_reachable(src) && dom.dominates(dst, src) {
                // Back edge src -> dst; flood backwards from src.
                let mut blocks = vec![dst];
                let mut stack = vec![src];
                while let Some(b) = stack.pop() {
                    if blocks.contains(&b) {
                        continue;
                    }
                    blocks.push(b);
                    for &p in cfg.preds(b) {
                        stack.push(p);
                    }
                }
                blocks.sort_unstable();
                if let Some(existing) = loops.iter_mut().find(|l| l.header == dst) {
                    for b in blocks {
                        if !existing.blocks.contains(&b) {
                            existing.blocks.push(b);
                        }
                    }
                    existing.blocks.sort_unstable();
                } else {
                    loops.push(NaturalLoop { header: dst, blocks });
                }
            }
        }
        let mut depth = vec![0u32; n];
        for l in &loops {
            for b in &l.blocks {
                depth[b.index()] += 1;
            }
        }
        LoopInfo { loops, depth }
    }

    /// All natural loops (headers unique).
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Loop nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Is `b` a loop header?
    pub fn is_header(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    /// Doubly-nested loop:
    /// entry -> oh; oh -> {ob, exit}; ob -> ih; ih -> {ib, olatch}; ib -> ih;
    /// olatch -> oh.
    fn nested() -> (epre_ir::Function, [BlockId; 6]) {
        let mut b = FunctionBuilder::new("n", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let oh = b.new_block();
        let ob = b.new_block();
        let ih = b.new_block();
        let ib = b.new_block();
        let olatch = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, z, n);
        b.jump(oh);
        b.switch_to(oh);
        b.branch(c, ob, exit);
        b.switch_to(ob);
        b.jump(ih);
        b.switch_to(ih);
        b.branch(c, ib, olatch);
        b.switch_to(ib);
        b.jump(ih);
        b.switch_to(olatch);
        b.jump(oh);
        b.switch_to(exit);
        b.ret(Some(n));
        let f = b.finish();
        (f, [oh, ob, ih, ib, olatch, exit])
    }

    #[test]
    fn finds_both_loops() {
        let (f, [oh, ob, ih, ib, olatch, exit]) = nested();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let li = LoopInfo::new(&cfg, &dom);
        assert_eq!(li.loops().len(), 2);
        assert!(li.is_header(oh));
        assert!(li.is_header(ih));
        assert!(!li.is_header(ob));
        let outer = li.loops().iter().find(|l| l.header == oh).unwrap();
        for b in [oh, ob, ih, ib, olatch] {
            assert!(outer.blocks.contains(&b), "{b} in outer loop");
        }
        assert!(!outer.blocks.contains(&exit));
    }

    #[test]
    fn nesting_depths() {
        let (f, [oh, ob, ih, ib, olatch, exit]) = nested();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let li = LoopInfo::new(&cfg, &dom);
        assert_eq!(li.depth(BlockId::ENTRY), 0);
        assert_eq!(li.depth(oh), 1);
        assert_eq!(li.depth(ob), 1);
        assert_eq!(li.depth(ih), 2);
        assert_eq!(li.depth(ib), 2);
        assert_eq!(li.depth(olatch), 1);
        assert_eq!(li.depth(exit), 0);
    }

    #[test]
    fn no_loops_in_dag() {
        let mut b = FunctionBuilder::new("dag", None);
        let c = b.loadi(Const::Int(1));
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let li = LoopInfo::new(&cfg, &dom);
        assert!(li.loops().is_empty());
        assert!(f.block_ids().all(|b| li.depth(b) == 0));
    }

    #[test]
    fn self_loop() {
        let mut b = FunctionBuilder::new("s", None);
        let c = b.loadi(Const::Int(1));
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.branch(c, l, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let li = LoopInfo::new(&cfg, &dom);
        assert_eq!(li.loops().len(), 1);
        assert_eq!(li.loops()[0].blocks, vec![l]);
        assert_eq!(li.depth(l), 1);
    }

    #[test]
    fn two_back_edges_same_header_merge() {
        // head with two latches.
        let mut b = FunctionBuilder::new("m", None);
        let c = b.loadi(Const::Int(1));
        let head = b.new_block();
        let l1 = b.new_block();
        let l2 = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        b.branch(c, l1, l2);
        b.switch_to(l1);
        b.branch(c, head, exit);
        b.switch_to(l2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let li = LoopInfo::new(&cfg, &dom);
        assert_eq!(li.loops().len(), 1);
        let l = &li.loops()[0];
        assert!(l.blocks.contains(&l1) && l.blocks.contains(&l2));
        assert_eq!(li.depth(head), 1);
    }
}
