//! Depth-first traversal orders over the CFG.
//!
//! The paper's rank computation (§3.1) visits blocks in **reverse
//! postorder**: every block is visited after all its forward-edge
//! predecessors, so operand ranks are available when an expression is
//! ranked (back edges — loops — are the exception, and φ-results take the
//! block rank precisely to break that cycle).

use crate::graph::Cfg;
use epre_ir::BlockId;

/// Postorder over the blocks reachable from the entry.
///
/// Children are visited in terminator order, matching the deterministic
/// traversal used throughout the crate.
pub fn postorder(cfg: &Cfg) -> Vec<BlockId> {
    let mut out = Vec::with_capacity(cfg.len());
    if cfg.is_empty() {
        return out;
    }
    let mut visited = vec![false; cfg.len()];
    // Iterative DFS with an explicit child cursor so postorder matches the
    // recursive definition exactly.
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
    visited[BlockId::ENTRY.index()] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = cfg.succs(b);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            out.push(b);
            stack.pop();
        }
    }
    out
}

/// Reverse postorder over the blocks reachable from the entry.
/// The entry block is always first.
pub fn reverse_postorder(cfg: &Cfg) -> Vec<BlockId> {
    let mut po = postorder(cfg);
    po.reverse();
    po
}

/// Dense reverse-postorder numbering of reachable blocks.
///
/// `number(b)` is 1-based (the entry block is 1), matching the paper's block
/// ranks: "the first block visited is given rank 1, the second block is
/// given rank 2, and so forth". Unreachable blocks have no number.
#[derive(Debug, Clone)]
pub struct RpoNumbers {
    order: Vec<BlockId>,
    number: Vec<Option<u32>>,
}

impl RpoNumbers {
    /// Compute the numbering for `cfg`.
    pub fn new(cfg: &Cfg) -> Self {
        let order = reverse_postorder(cfg);
        let mut number = vec![None; cfg.len()];
        for (i, &b) in order.iter().enumerate() {
            number[b.index()] = Some(i as u32 + 1);
        }
        RpoNumbers { order, number }
    }

    /// The blocks in reverse postorder.
    pub fn order(&self) -> &[BlockId] {
        &self.order
    }

    /// The 1-based RPO number of `b`, or `None` if `b` is unreachable.
    pub fn number(&self, b: BlockId) -> Option<u32> {
        self.number[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    fn loop_function() -> (epre_ir::Function, [BlockId; 4]) {
        // entry -> head; head -> {body, exit}; body -> head
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, z, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(n));
        (b.finish(), [BlockId(0), head, body, exit])
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (f, [entry, head, body, exit]) = loop_function();
        let cfg = Cfg::new(&f);
        let rpo = reverse_postorder(&cfg);
        assert_eq!(rpo[0], entry);
        assert_eq!(rpo.len(), 4);
        // head precedes both body and exit.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(head) < pos(body));
        assert!(pos(head) < pos(exit));
    }

    #[test]
    fn postorder_is_reverse_of_rpo() {
        let (f, _) = loop_function();
        let cfg = Cfg::new(&f);
        let mut po = postorder(&cfg);
        po.reverse();
        assert_eq!(po, reverse_postorder(&cfg));
    }

    #[test]
    fn numbers_are_one_based_and_dense() {
        let (f, [entry, head, body, exit]) = loop_function();
        let cfg = Cfg::new(&f);
        let rpo = RpoNumbers::new(&cfg);
        assert_eq!(rpo.number(entry), Some(1));
        assert_eq!(rpo.number(head), Some(2));
        let mut nums: Vec<u32> =
            [entry, head, body, exit].iter().map(|&b| rpo.number(b).unwrap()).collect();
        nums.sort_unstable();
        assert_eq!(nums, vec![1, 2, 3, 4]);
        assert_eq!(rpo.order().len(), 4);
    }

    #[test]
    fn unreachable_blocks_have_no_number() {
        let mut b = FunctionBuilder::new("u", None);
        b.ret(None);
        let dead = b.new_block();
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rpo = RpoNumbers::new(&cfg);
        assert_eq!(rpo.number(dead), None);
        assert_eq!(rpo.order().len(), 1);
    }

    #[test]
    fn straight_line_order() {
        let mut b = FunctionBuilder::new("s", None);
        let b1 = b.new_block();
        let b2 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(reverse_postorder(&cfg), vec![BlockId(0), b1, b2]);
    }
}
