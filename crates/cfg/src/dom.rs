//! Dominators and dominance frontiers.
//!
//! Immediate dominators are computed with the Cooper–Harvey–Kennedy
//! iterative algorithm ("A Simple, Fast Dominance Algorithm"), which the
//! Rice group — the paper's authors — developed for exactly this kind of
//! pass-structured optimizer. Dominance frontiers follow Cytron et al.
//! (TOPLAS 1991), the paper's reference \[11\], and drive φ-placement in
//! `epre-ssa` as well as the dominator-based CSE of §5.3.

use crate::graph::Cfg;
use crate::order::RpoNumbers;
use epre_ir::{BlockId, Function};

/// Immediate-dominator tree plus dominance frontiers for one function.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator; entry's idom is itself; unreachable
    /// blocks have `None`.
    idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    children: Vec<Vec<BlockId>>,
    /// Dominance frontier of each block.
    frontier: Vec<Vec<BlockId>>,
    rpo: RpoNumbers,
}

impl Dominators {
    /// Compute dominators for `f` given its CFG snapshot.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let rpo = RpoNumbers::new(cfg);
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[BlockId::ENTRY.index()] = Some(BlockId::ENTRY);

        // Iterate to a fixed point in reverse postorder (CHK).
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.order().iter().skip(1) {
                // First processed predecessor (one with an idom already).
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for &b in rpo.order() {
            if b != BlockId::ENTRY {
                if let Some(d) = idom[b.index()] {
                    children[d.index()].push(b);
                }
            }
        }

        // Dominance frontiers (Cytron et al., fig. 10 — the "two-finger"
        // formulation from CHK).
        let mut frontier = vec![Vec::new(); n];
        for &b in rpo.order() {
            if cfg.preds(b).len() >= 2 {
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    let mut runner = p;
                    while Some(runner) != idom[b.index()] {
                        if !frontier[runner.index()].contains(&b) {
                            frontier[runner.index()].push(b);
                        }
                        runner = idom[runner.index()].expect("runner is reachable");
                    }
                }
            }
        }

        Dominators { idom, children, frontier, rpo }
    }

    /// The immediate dominator of `b`; `None` for the entry block and for
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == BlockId::ENTRY {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Does `a` dominate `b`? (Reflexive: every block dominates itself.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Does `a` strictly dominate `b`?
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The children of `b` in the dominator tree.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// The dominance frontier of `b`.
    pub fn frontier(&self, b: BlockId) -> &[BlockId] {
        &self.frontier[b.index()]
    }

    /// Is `b` reachable from the entry?
    pub fn is_reachable(&self, b: BlockId) -> bool {
        b == BlockId::ENTRY || self.idom[b.index()].is_some()
    }

    /// The reverse-postorder numbering computed alongside the dominators.
    pub fn rpo(&self) -> &RpoNumbers {
        &self.rpo
    }

    /// Dominator-tree preorder (entry first), visiting children in RPO
    /// order. Useful for renaming walks and dominator-based CSE.
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![BlockId::ENTRY];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children(b).iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

fn intersect(idom: &[Option<BlockId>], rpo: &RpoNumbers, mut a: BlockId, mut b: BlockId) -> BlockId {
    // Walk the two candidates up the (partial) dominator tree until they
    // meet; RPO numbers give the direction.
    let num = |x: BlockId| rpo.number(x).expect("reachable");
    while a != b {
        while num(a) > num(b) {
            a = idom[a.index()].expect("processed");
        }
        while num(b) > num(a) {
            b = idom[b.index()].expect("processed");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    /// The classic CHK paper example is a diamond; build a diamond with a
    /// loop around the join block.
    ///
    /// entry(0) -> {t(1), e(2)}; t,e -> j(3); j -> {head? no}: j -> exit(4)
    fn diamond() -> (epre_ir::Function, [BlockId; 5]) {
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, x, z);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(x));
        (b.finish(), [BlockId(0), t, e, j, exit])
    }

    #[test]
    fn diamond_idoms() {
        let (f, [entry, t, e, j, exit]) = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(t), Some(entry));
        assert_eq!(dom.idom(e), Some(entry));
        assert_eq!(dom.idom(j), Some(entry)); // join dominated by the fork
        assert_eq!(dom.idom(exit), Some(j));
    }

    #[test]
    fn diamond_frontiers() {
        let (f, [entry, t, e, j, _]) = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        assert_eq!(dom.frontier(t), &[j]);
        assert_eq!(dom.frontier(e), &[j]);
        assert_eq!(dom.frontier(entry), &[] as &[BlockId]);
        assert_eq!(dom.frontier(j), &[] as &[BlockId]);
    }

    #[test]
    fn dominates_relation() {
        let (f, [entry, t, _e, j, exit]) = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(j, exit));
        assert!(!dom.dominates(t, j));
        assert!(dom.dominates(t, t));
        assert!(!dom.strictly_dominates(t, t));
        assert!(dom.strictly_dominates(entry, j));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, z, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(n));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        assert!(dom.dominates(head, body));
        assert!(dom.dominates(head, exit));
        // The back edge's source has the header in its frontier.
        assert!(dom.frontier(body).contains(&head));
        assert!(dom.frontier(head).contains(&head));
    }

    #[test]
    fn matches_naive_dominators_on_irreducible_graph() {
        // Irreducible: entry -> a, b; a -> b; b -> a; a -> exit.
        let mut bld = FunctionBuilder::new("irr", None);
        let c = bld.loadi(Const::Int(1));
        let a = bld.new_block();
        let b = bld.new_block();
        let exit = bld.new_block();
        bld.branch(c, a, b);
        bld.switch_to(a);
        bld.branch(c, b, exit);
        bld.switch_to(b);
        bld.jump(a);
        bld.switch_to(exit);
        bld.ret(None);
        let f = bld.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let naive = naive_dominators(&cfg);
        for x in f.block_ids() {
            for y in f.block_ids() {
                assert_eq!(
                    dom.dominates(x, y),
                    naive[y.index()].contains(&x),
                    "dominates({x},{y})"
                );
            }
        }
    }

    /// O(n²) reference: iterate Dom(b) = {b} ∪ ∩ Dom(p).
    fn naive_dominators(cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = cfg.len();
        let all: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
        let mut dom: Vec<Vec<BlockId>> = vec![all.clone(); n];
        dom[0] = vec![BlockId::ENTRY];
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                let id = BlockId(b as u32);
                let mut new: Option<Vec<BlockId>> = None;
                for &p in cfg.preds(id) {
                    let pd = &dom[p.index()];
                    new = Some(match new {
                        None => pd.clone(),
                        Some(cur) => cur.into_iter().filter(|x| pd.contains(x)).collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                if !new.contains(&id) {
                    new.push(id);
                }
                new.sort_unstable();
                if new != dom[b] {
                    dom[b] = new;
                    changed = true;
                }
            }
        }
        dom
    }

    #[test]
    fn preorder_visits_parents_first() {
        let (f, _) = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let pre = dom.preorder();
        assert_eq!(pre[0], BlockId::ENTRY);
        let pos = |b: BlockId| pre.iter().position(|&x| x == b).unwrap();
        for b in f.block_ids() {
            if let Some(d) = dom.idom(b) {
                assert!(pos(d) < pos(b));
            }
        }
    }
}
