//! CFG surgery: edge splitting.
//!
//! Two parts of the pipeline place code "on an edge": forward propagation
//! inserts the copies that replace φ-nodes at the end of predecessor blocks
//! ("if necessary, the entering edges are split and appropriate predecessor
//! blocks are created", §3.1), and PRE inserts computations on `INSERT`
//! edges (the Drechsler–Stadel edge-placement formulation). Both need a
//! *landing block* on the edge when the edge is critical.

use crate::graph::Cfg;
use epre_ir::{Block, BlockId, Function, Inst, Terminator};

/// Split the edge `from -> to`: insert a fresh block containing only a jump
/// to `to`, retarget `from`'s terminator, and rewrite any φ-nodes in `to`
/// that named `from` so they name the new block instead.
///
/// Returns the new block's id. The caller's [`Cfg`] snapshot is stale after
/// this and must be rebuilt.
///
/// # Panics
/// Panics if `from -> to` is not an edge of the function.
pub fn split_edge(f: &mut Function, from: BlockId, to: BlockId) -> BlockId {
    assert!(
        f.block(from).term.successors().contains(&to),
        "{from} -> {to} is not an edge"
    );
    let nb = f.add_block(Block::new(Terminator::Jump { target: to }));
    f.block_mut(from).term.retarget(to, nb);
    for inst in &mut f.block_mut(to).insts {
        if let Inst::Phi { args, .. } = inst {
            for (pb, _) in args {
                if *pb == from {
                    *pb = nb;
                }
            }
        } else {
            break; // φs are a prefix
        }
    }
    nb
}

/// Split every critical edge of `f` (edges from a multi-successor block to a
/// multi-predecessor block). Returns the number of edges split.
///
/// After this, code can be inserted "on" any edge by appending to the edge's
/// source block (if it has one successor) or prepending to the target (if it
/// has one predecessor).
pub fn split_critical_edges(f: &mut Function) -> usize {
    let cfg = Cfg::new(f);
    let critical: Vec<(BlockId, BlockId)> =
        cfg.edges().into_iter().filter(|&(a, b)| cfg.is_critical(a, b)).collect();
    for &(a, b) in &critical {
        split_edge(f, a, b);
    }
    critical.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    /// entry branches to {a, join}; a jumps to join. (entry, join) critical.
    fn critical_fixture() -> (Function, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("c", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let a = b.new_block();
        let join = b.new_block();
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, x, z);
        b.branch(c, a, join);
        b.switch_to(a);
        b.jump(join);
        b.switch_to(join);
        b.ret(Some(x));
        (b.finish(), a, join)
    }

    #[test]
    fn splits_named_edge() {
        let (mut f, _a, join) = critical_fixture();
        let before = f.blocks.len();
        let nb = split_edge(&mut f, BlockId::ENTRY, join);
        assert_eq!(f.blocks.len(), before + 1);
        assert!(f.verify().is_ok());
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(nb), &[join]);
        assert!(cfg.preds(join).contains(&nb));
        assert!(!cfg.preds(join).contains(&BlockId::ENTRY));
    }

    #[test]
    fn split_updates_phis() {
        let (mut f, a, join) = critical_fixture();
        // Add a φ in join naming both preds.
        let r1 = f.new_reg(Ty::Int);
        let phi = Inst::Phi {
            dst: r1,
            args: vec![(BlockId::ENTRY, f.params[0]), (a, f.params[0])],
        };
        f.block_mut(join).insts.insert(0, phi);
        let nb = split_edge(&mut f, BlockId::ENTRY, join);
        match &f.block(join).insts[0] {
            Inst::Phi { args, .. } => {
                assert!(args.iter().any(|&(b, _)| b == nb));
                assert!(!args.iter().any(|&(b, _)| b == BlockId::ENTRY));
                assert!(args.iter().any(|&(b, _)| b == a));
            }
            _ => panic!("expected φ"),
        }
        assert!(f.verify().is_ok());
    }

    #[test]
    fn split_critical_edges_only_splits_critical() {
        let (mut f, _, _) = critical_fixture();
        let n = split_critical_edges(&mut f);
        assert_eq!(n, 1); // only (entry, join) is critical
        assert!(f.verify().is_ok());
        let cfg = Cfg::new(&f);
        assert!(cfg.edges().iter().all(|&(x, y)| !cfg.is_critical(x, y)));
    }

    #[test]
    fn loop_backedge_split() {
        // while-style loop: head -> {body, exit}; body -> head. Edge
        // (body, head) is critical iff head has ≥2 preds (it does: entry
        // and body) and body has ≥2 succs (it doesn't). Entry->head IS
        // critical? entry has 1 succ. So only (head,exit)... exit has 1
        // pred. Nothing critical here.
        let mut b = FunctionBuilder::new("l", None);
        let c = b.loadi(Const::Int(1));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(split_critical_edges(&mut f), 0);

        // Now make the back edge critical: body conditionally exits too.
        let mut b = FunctionBuilder::new("l2", None);
        let c = b.loadi(Const::Int(1));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.branch(c, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        // Critical: (body,head) [2 succ, 2 pred], (head,exit) and
        // (body,exit) [exit has 2 preds].
        assert_eq!(split_critical_edges(&mut f), 3);
        assert!(f.verify().is_ok());
    }

    #[test]
    #[should_panic(expected = "is not an edge")]
    fn split_nonexistent_edge_panics() {
        let (mut f, a, _join) = critical_fixture();
        split_edge(&mut f, a, BlockId::ENTRY);
    }

    #[test]
    fn branch_with_same_targets_splits_once_per_retarget() {
        let mut b = FunctionBuilder::new("dup", None);
        let c = b.loadi(Const::Int(1));
        let t = b.new_block();
        b.branch(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let mut f = b.finish();
        let nb = split_edge(&mut f, BlockId::ENTRY, t);
        // Both arms retargeted to the new block: still one logical edge.
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId::ENTRY), &[nb]);
        assert_eq!(cfg.preds(t), &[nb]);
        assert!(f.verify().is_ok());
    }
}
