//! The hand-broken IR corpus: each `corpus/*.iloc` file seeds exactly one
//! invariant violation, and the lint engine must report exactly the
//! expected rule code — no misses, no cascades, no collateral noise.

use epre_ir::parse_module;
use epre_lint::{lint_module, LintOptions, Severity};

/// Lint a corpus file and return `(distinct codes, has_errors)`.
fn lint(text: &str) -> (Vec<&'static str>, bool) {
    let m = parse_module(text).expect("corpus files are syntactically valid ILOC");
    let report = lint_module(&m, &LintOptions::default());
    (report.codes(), report.has_errors())
}

#[test]
fn phi_after_non_phi_fires_l005_only() {
    let (codes, errors) = lint(include_str!("corpus/phi_prefix.iloc"));
    assert_eq!(codes, vec!["L005"]);
    assert!(errors);
}

#[test]
fn use_before_def_fires_l020_only() {
    let (codes, errors) = lint(include_str!("corpus/use_before_def.iloc"));
    assert_eq!(codes, vec!["L020"]);
    assert!(errors);
}

#[test]
fn dangling_branch_target_fires_l002_only() {
    let (codes, errors) = lint(include_str!("corpus/dangling_target.iloc"));
    assert_eq!(codes, vec!["L002"]);
    assert!(errors);
}

#[test]
fn double_ssa_definition_fires_l010_only() {
    let text = include_str!("corpus/double_def.iloc");
    let (codes, errors) = lint(text);
    assert_eq!(codes, vec!["L010"]);
    assert!(errors);
    // First-definition-wins: the dominance rules must not cascade, so the
    // double definition is one diagnostic, not one per use.
    let m = parse_module(text).unwrap();
    let report = lint_module(&m, &LintOptions::default());
    assert_eq!(report.error_count(), 1, "{report}");
}

#[test]
fn unsplit_critical_edge_fires_l031_and_no_errors() {
    let (codes, errors) = lint(include_str!("corpus/critical_edge.iloc"));
    assert_eq!(codes, vec!["L031"]);
    assert!(!errors, "a critical edge is hygiene, not an invariant break");
}

#[test]
fn corpus_diagnostics_carry_locations_and_json() {
    let m = parse_module(include_str!("corpus/use_before_def.iloc")).unwrap();
    let report = lint_module(&m, &LintOptions::default());
    let d = &report.diagnostics[0];
    assert_eq!(d.severity(), Severity::Error);
    assert_eq!(d.location.function, "use_before_def");
    assert!(d.location.block.is_some());
    let json = report.to_json();
    assert!(json.contains("\"code\":\"L020\""), "{json}");
    assert!(json.contains("\"function\":\"use_before_def\""), "{json}");
}
