//! The suite-wide correctness gate behind Table 1: every routine, compiled
//! at every optimization level, must produce the same checksum (float
//! results within reassociation tolerance), and the dynamic counts must
//! show the paper's qualitative story in aggregate.

use epre::measure_module;
use epre_frontend::NamingMode;
use epre_suite::all_routines;

#[test]
fn all_levels_agree_on_every_routine() {
    for r in all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        // measure_module panics on cross-level disagreement.
        let ms = measure_module(&m, r.entry, &[])
            .unwrap_or_else(|e| panic!("{}: {e}", r.name));
        assert_eq!(ms.len(), 4, "{}", r.name);
        for w in &ms {
            assert!(w.counts.total > 0, "{}", r.name);
        }
    }
}

#[test]
fn pre_improves_aggregate_counts() {
    // Table 1's `partial` column: PRE alone gives large improvements —
    // 10%..70% per routine in the paper. Require a strict aggregate win
    // and that the vast majority of routines individually improve.
    let mut base_total = 0u64;
    let mut pre_total = 0u64;
    let mut improved = 0usize;
    let mut total = 0usize;
    for r in all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        let ms = measure_module(&m, r.entry, &[]).unwrap();
        base_total += ms[0].counts.total;
        pre_total += ms[1].counts.total;
        total += 1;
        if ms[1].counts.total < ms[0].counts.total {
            improved += 1;
        }
    }
    assert!(
        pre_total < base_total,
        "aggregate: partial {pre_total} vs baseline {base_total}"
    );
    assert!(
        improved * 10 >= total * 8,
        "PRE improved only {improved}/{total} routines"
    );
    let pct = 100.0 * (base_total - pre_total) as f64 / base_total as f64;
    assert!(pct > 10.0, "aggregate PRE improvement only {pct:.1}%");
}

#[test]
fn reassociation_family_wins_in_aggregate() {
    // Table 1's `new` column: reassociation + distribution + GVN on top of
    // PRE. Per-routine results are mixed (the paper has −12%..61%); the
    // aggregate must improve over `partial`.
    let mut pre_total = 0u64;
    let mut dist_total = 0u64;
    for r in all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        let ms = measure_module(&m, r.entry, &[]).unwrap();
        pre_total += ms[1].counts.total;
        dist_total += ms[3].counts.total;
    }
    assert!(
        dist_total < pre_total,
        "aggregate: distribution {dist_total} vs partial {pre_total}"
    );
}

#[test]
fn simple_naming_tells_the_gvn_story() {
    // §2.2/§3.2: with naive (Simple) naming, plain PRE finds little; the
    // reassociation+GVN levels rebuild the name space, so they keep
    // working. Check on an array-heavy routine.
    let r = all_routines().into_iter().find(|r| r.name == "sgemv").unwrap();
    let m = r.compile(NamingMode::Simple).unwrap();
    let ms = measure_module(&m, r.entry, &[]).unwrap();
    let (base, part, _reas, dist) =
        (ms[0].counts.total, ms[1].counts.total, ms[2].counts.total, ms[3].counts.total);
    // GVN-based levels must recover what naive naming denies plain PRE.
    assert!(
        dist < part,
        "GVN+reassociation must beat plain PRE under Simple naming: {base} {part} {dist}"
    );
    let _ = base;
}

#[test]
fn optimization_never_lengthens_a_routine_pre_only() {
    // PRE's core guarantee (§2): it never lengthens an execution path.
    for r in all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        let ms = measure_module(&m, r.entry, &[]).unwrap();
        assert!(
            ms[1].counts.total <= ms[0].counts.total,
            "{}: partial {} > baseline {}",
            r.name,
            ms[1].counts.total,
            ms[0].counts.total
        );
    }
}
