//! The deterministic pipeline-invariant gate: every routine of the
//! 50-routine suite, at every optimization level, must stay lint-clean
//! after **every single pass** — checked by the `verify_each` pipeline
//! mode, which would blame the offending pass by name if one broke an
//! invariant.

use epre::{OptLevel, Optimizer};
use epre_frontend::NamingMode;
use epre_suite::all_routines;

const ALL_LEVELS: [OptLevel; 5] = [
    OptLevel::Baseline,
    OptLevel::Partial,
    OptLevel::Reassociation,
    OptLevel::Distribution,
    OptLevel::DistributionLvn,
];

#[test]
fn every_pass_of_every_level_preserves_invariants_on_the_suite() {
    for r in all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        for level in ALL_LEVELS {
            let opt = Optimizer::new(level);
            if let Err(e) = opt.optimize_verified(&m) {
                panic!("{} at {}: {e}", r.name, level.label());
            }
        }
    }
}
