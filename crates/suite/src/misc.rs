//! The remaining Spec-derived rows: table generation (`gamgen`,
//! `fmtset`, `fmtgen`), initialization (`iniset`, `inithx`), the
//! expression-heavy `fpppp`, and the small kernels `x21y21` and `yeh`.

use crate::Routine;

/// The table-generation and miscellaneous group.
pub fn routines() -> Vec<Routine> {
    vec![
        Routine {
            name: "gamgen",
            origin: "doduc: gamma-function/decay-heat table generation",
            entry: "drv",
            source: "function gamgen(n, tab)\n\
                     integer n, i, j\n\
                     real gamgen, tab(24, 4), s, t, g\n\
                     begin\n\
                     s = 0\n\
                     do i = 1, n\n\
                       t = 0.25 * i\n\
                       do j = 1, 4\n\
                         g = exp(-t * j) * (1.0 + t / j) * pow(t, 0.5 * j)\n\
                         tab(i, j) = g\n\
                         s = s + g\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, tab(24, 4), s\n\
                     integer k\n\
                     begin\n\
                     s = 0\n\
                     do k = 1, 3\n\
                       s = s + gamgen(24, tab)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "fmtset",
            origin: "Spec: format table setup (integer index arithmetic)",
            entry: "drv",
            source: "function fmtset(n, w)\n\
                     integer fmtset, n, i, k, w(*)\n\
                     begin\n\
                     k = 0\n\
                     do i = 1, n\n\
                       w(i) = 10 * (i / 4) + mod(i, 4) + 1\n\
                       k = k + w(i)\n\
                     enddo\n\
                     return k\n\
                     end\n\
                     function drv()\n\
                     integer drv, w(24), k, t\n\
                     begin\n\
                     k = 0\n\
                     do t = 1, 3\n\
                       k = k + fmtset(24, w)\n\
                     enddo\n\
                     return k\n\
                     end\n",
        },
        Routine {
            name: "fmtgen",
            origin: "Spec: format generation (digit decomposition)",
            entry: "drv",
            source: "function fmtgen(num)\n\
                     integer fmtgen, num, n, d, s\n\
                     begin\n\
                     n = num\n\
                     s = 0\n\
                     while n > 0 do\n\
                       d = mod(n, 10)\n\
                       s = s * 10 + d\n\
                       n = n / 10\n\
                     endwhile\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     integer drv, k, i\n\
                     begin\n\
                     k = 0\n\
                     do i = 1, 8\n\
                       k = k + fmtgen(1000 + 137 * i)\n\
                     enddo\n\
                     return k\n\
                     end\n",
        },
        Routine {
            name: "iniset",
            origin: "doduc: bulk array initialization",
            entry: "drv",
            source: "function iniset(n, a, b, c)\n\
                     integer n, i\n\
                     real iniset, a(*), b(*), c(*), s\n\
                     begin\n\
                     do i = 1, n\n\
                       a(i) = 0.0\n\
                       b(i) = 1.0\n\
                       c(i) = 0.5 * i\n\
                     enddo\n\
                     s = 0\n\
                     do i = 1, n\n\
                       s = s + a(i) + b(i) + c(i)\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, a(48), b(48), c(48), s\n\
                     integer t\n\
                     begin\n\
                     s = 0\n\
                     do t = 1, 3\n\
                       s = s + iniset(48, a, b, c)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "inithx",
            origin: "doduc: heat-exchanger geometry initialization",
            entry: "drv",
            source: "function inithx(n, m, geo)\n\
                     integer n, m, i, j\n\
                     real inithx, geo(20, 6), s, r, dz\n\
                     begin\n\
                     dz = 2.5 / n\n\
                     s = 0\n\
                     do i = 1, n\n\
                       r = 0.05 + 0.002 * i\n\
                       geo(i, 1) = dz * i\n\
                       geo(i, 2) = 3.14159265 * r * r\n\
                       geo(i, 3) = 2.0 * 3.14159265 * r * dz\n\
                       geo(i, 4) = geo(i, 2) * dz\n\
                       geo(i, 5) = geo(i, 3) / geo(i, 2)\n\
                       geo(i, 6) = 1.0 / geo(i, 5)\n\
                       do j = 1, m\n\
                         s = s + geo(i, j)\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, geo(20, 6)\n\
                     begin\n\
                     return inithx(20, 6, geo)\n\
                     end\n",
        },
        Routine {
            name: "fpppp",
            origin: "Spec: two-electron integral kernel (expression-heavy straight-line code)",
            entry: "drv",
            source: "function fpppp(a, b, c, d)\n\
                     real fpppp, a, b, c, d\n\
                     real p, q, r, s, t, u, v, w, e1, e2, e3, e4\n\
                     begin\n\
                     p = a + b\n\
                     q = c + d\n\
                     r = a * b / p\n\
                     s = c * d / q\n\
                     t = p * q / (p + q)\n\
                     u = (a * c + b * d) / (p * q)\n\
                     v = (a * d + b * c) / (p * q)\n\
                     w = u - v\n\
                     e1 = exp(-r * w * w)\n\
                     e2 = exp(-s * w * w)\n\
                     e3 = sqrt(t) * e1 * e2\n\
                     e4 = e3 * (1.0 + w * w * (r + s) / (1.0 + t))\n\
                     return e4 + e3 * u + e1 * v + e2 * w\n\
                     end\n\
                     function drv()\n\
                     real drv, s, x\n\
                     integer i, j\n\
                     begin\n\
                     s = 0\n\
                     do i = 1, 5\n\
                       do j = 1, 5\n\
                         x = 0.1 * i\n\
                         s = s + fpppp(1.0 + x, 2.0 - x, 0.5 + 0.1 * j, 1.5)\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "x21y21",
            origin: "Spec: tiny polynomial kernel (the paper's smallest routine)",
            entry: "drv",
            source: "function x21y21(x, y)\n\
                     real x21y21, x, y, x2, y2\n\
                     begin\n\
                     x2 = x * x\n\
                     y2 = y * y\n\
                     return (x2 + y2) * (x2 - y2) + 2.0 * x2 * y2\n\
                     end\n\
                     function drv()\n\
                     real drv, s\n\
                     integer i\n\
                     begin\n\
                     s = 0\n\
                     do i = 1, 6\n\
                       s = s + x21y21(0.5 * i, 2.0 - 0.2 * i)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "yeh",
            origin: "doduc: critical-flow correlation (Yeh)",
            entry: "drv",
            source: "function yeh(p, h)\n\
                     real yeh, p, h, g, x\n\
                     begin\n\
                     x = (h - 400.0) / 2000.0\n\
                     if x < 0.0 then\n\
                       x = 0.0\n\
                     endif\n\
                     g = 1000.0 * sqrt(p) * (1.0 - x) + 500.0 * x * x * p\n\
                     if g < 0.0 then\n\
                       g = 0.0\n\
                     endif\n\
                     return g\n\
                     end\n\
                     function drv()\n\
                     real drv, s, p\n\
                     integer i\n\
                     begin\n\
                     s = 0\n\
                     p = 1.0\n\
                     do i = 1, 10\n\
                       s = s + yeh(p, 300.0 + 150.0 * i)\n\
                       p = p + 0.6\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
    ]
}
