//! Routines modeled on the Spec `doduc` nuclear-reactor kernels and the
//! other Spec-derived rows of the paper's tables. The original sources are
//! proprietary; these reproduce the *computational shapes* the paper's
//! transformations act on — nested DO loops over multi-dimensional arrays,
//! reductions, table interpolation, and branchy scalar bookkeeping.

use crate::Routine;

/// The doduc-flavoured group.
pub fn routines() -> Vec<Routine> {
    vec![
        Routine {
            name: "bilan",
            origin: "doduc: energy balance over cells",
            entry: "drv",
            source: "function bilan(n, v, w)\n\
                     integer n, i, j\n\
                     real bilan, v(20, 20), w(20, 20), s, t\n\
                     begin\n\
                     s = 0\n\
                     do j = 2, n - 1\n\
                       do i = 2, n - 1\n\
                         t = v(i, j) * (w(i + 1, j) - 2.0 * w(i, j) + w(i - 1, j))\n\
                         s = s + t + v(i, j) * (w(i, j + 1) - 2.0 * w(i, j) + w(i, j - 1))\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, v(20, 20), w(20, 20)\n\
                     integer i, j\n\
                     begin\n\
                     do j = 1, 20\n\
                       do i = 1, 20\n\
                         v(i, j) = 0.01 * (i + 2 * j)\n\
                         w(i, j) = 1.0 / (i + j)\n\
                       enddo\n\
                     enddo\n\
                     return bilan(18, v, w)\n\
                     end\n",
        },
        Routine {
            name: "cardeb",
            origin: "doduc: flow-map initialization from debit cards",
            entry: "drv",
            source: "function cardeb(n, q, h)\n\
                     integer n, i\n\
                     real cardeb, q(*), h(*), s, d\n\
                     begin\n\
                     s = 0\n\
                     do i = 2, n\n\
                       d = h(i) - h(i - 1)\n\
                       q(i) = q(i - 1) + d * 0.5 * (q(i) + q(i - 1))\n\
                       s = s + q(i) * d\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, q(30), h(30)\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 30\n\
                       q(i) = 0.2 + 0.01 * i\n\
                       h(i) = 0.1 * i\n\
                     enddo\n\
                     return cardeb(30, q, h)\n\
                     end\n",
        },
        Routine {
            name: "coeray",
            origin: "doduc: ray coefficients (straight-line FP expressions)",
            entry: "drv",
            source: "function coeray(a, b, c)\n\
                     real coeray, a, b, c, u, v, w\n\
                     begin\n\
                     u = a * b + b * c + c * a\n\
                     v = a * b - b * c + c * a\n\
                     w = (u + v) * (u - v) / (1.0 + u * u)\n\
                     return w + sqrt(abs(u * v)) + a * b * c\n\
                     end\n\
                     function drv()\n\
                     real drv, s, x\n\
                     integer i\n\
                     begin\n\
                     s = 0\n\
                     x = 0.3\n\
                     do i = 1, 6\n\
                       s = s + coeray(x, x + 0.5, 1.0 / x)\n\
                       x = x + 0.2\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "colbur",
            origin: "doduc: collision/burnup bookkeeping with branches",
            entry: "drv",
            source: "function colbur(n, u)\n\
                     integer n, i, k\n\
                     real colbur, u(*), s\n\
                     begin\n\
                     s = 0\n\
                     k = 0\n\
                     do i = 1, n\n\
                       if u(i) > 0.5 then\n\
                         s = s + u(i) * u(i)\n\
                         k = k + 1\n\
                       elseif u(i) > 0.25 then\n\
                         s = s + u(i)\n\
                       else\n\
                         s = s - u(i)\n\
                       endif\n\
                     enddo\n\
                     return s + float(k)\n\
                     end\n\
                     function drv()\n\
                     real drv, u(40)\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 40\n\
                       u(i) = mod(1.0 * i * i, 7.0) / 7.0\n\
                     enddo\n\
                     return colbur(40, u)\n\
                     end\n",
        },
        Routine {
            name: "dcoera",
            origin: "doduc: derivative of coeray-style coefficients",
            entry: "drv",
            source: "function dcoera(n, x, y)\n\
                     integer n, i\n\
                     real dcoera, x(*), y(*), s, d1, d2\n\
                     begin\n\
                     s = 0\n\
                     do i = 2, n - 1\n\
                       d1 = (y(i + 1) - y(i - 1)) / (x(i + 1) - x(i - 1))\n\
                       d2 = (y(i + 1) - 2.0 * y(i) + y(i - 1)) / ((x(i + 1) - x(i)) * (x(i) - x(i - 1)))\n\
                       s = s + d1 * d1 + 0.5 * d2\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, x(30), y(30)\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 30\n\
                       x(i) = 0.2 * i\n\
                       y(i) = sin(0.2 * i)\n\
                     enddo\n\
                     return dcoera(30, x, y)\n\
                     end\n",
        },
        Routine {
            name: "ddeflu",
            origin: "doduc: fluid derivative evaluation over a 2-D grid",
            entry: "drv",
            source: "function ddeflu(n, p, r)\n\
                     integer n, i, j\n\
                     real ddeflu, p(16, 16), r(16, 16), s, g\n\
                     begin\n\
                     s = 0\n\
                     do j = 2, n - 1\n\
                       do i = 2, n - 1\n\
                         g = (p(i + 1, j) - p(i - 1, j)) * r(i, j) + (p(i, j + 1) - p(i, j - 1)) * r(i, j)\n\
                         r(i, j) = r(i, j) + 0.01 * g\n\
                         s = s + g * g\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, p(16, 16), r(16, 16), s\n\
                     integer i, j, t\n\
                     begin\n\
                     do j = 1, 16\n\
                       do i = 1, 16\n\
                         p(i, j) = 0.1 * i - 0.05 * j\n\
                         r(i, j) = 1.0 + 0.01 * i * j\n\
                       enddo\n\
                     enddo\n\
                     s = 0\n\
                     do t = 1, 3\n\
                       s = s + ddeflu(16, p, r)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "debflu",
            origin: "doduc: fluid-flow update sweep",
            entry: "drv",
            source: "function debflu(n, f, g)\n\
                     integer n, i, j\n\
                     real debflu, f(14, 14), g(14, 14), s, flux\n\
                     begin\n\
                     s = 0\n\
                     do j = 2, n\n\
                       do i = 2, n\n\
                         flux = 0.5 * (f(i, j) + f(i - 1, j)) - 0.5 * (g(i, j) + g(i, j - 1))\n\
                         f(i, j) = f(i, j) - 0.02 * flux\n\
                         g(i, j) = g(i, j) + 0.02 * flux\n\
                         s = s + abs(flux)\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, f(14, 14), g(14, 14), s\n\
                     integer i, j, t\n\
                     begin\n\
                     do j = 1, 14\n\
                       do i = 1, 14\n\
                         f(i, j) = 1.0 / i + 0.1 * j\n\
                         g(i, j) = 1.0 / j + 0.1 * i\n\
                       enddo\n\
                     enddo\n\
                     s = 0\n\
                     do t = 1, 4\n\
                       s = s + debflu(14, f, g)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "debico",
            origin: "doduc: debit/pressure interpolation with table search",
            entry: "drv",
            source: "function debico(n, tab, p)\n\
                     integer n, i, k\n\
                     real debico, tab(*), p, frac\n\
                     begin\n\
                     k = 1\n\
                     do i = 1, n - 1\n\
                       if tab(i) <= p then\n\
                         k = i\n\
                       endif\n\
                     enddo\n\
                     frac = (p - tab(k)) / (tab(k + 1) - tab(k))\n\
                     return float(k) + frac\n\
                     end\n\
                     function drv()\n\
                     real drv, tab(25), s, p\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 25\n\
                       tab(i) = 0.3 * i + 0.01 * i * i\n\
                     enddo\n\
                     s = 0\n\
                     p = 0.5\n\
                     do i = 1, 12\n\
                       s = s + debico(25, tab, p)\n\
                       p = p + 0.9\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "deseco",
            origin: "doduc: second-order thermal update (largest doduc routine)",
            entry: "drv",
            source: "function deseco(n, t, c, q)\n\
                     integer n, i, j\n\
                     real deseco, t(18, 18), c(18, 18), q(18, 18), s, dt, k1, k2\n\
                     begin\n\
                     s = 0\n\
                     do j = 2, n - 1\n\
                       do i = 2, n - 1\n\
                         k1 = c(i, j) * (t(i + 1, j) + t(i - 1, j) - 2.0 * t(i, j))\n\
                         k2 = c(i, j) * (t(i, j + 1) + t(i, j - 1) - 2.0 * t(i, j))\n\
                         dt = k1 + k2 + q(i, j)\n\
                         t(i, j) = t(i, j) + 0.05 * dt\n\
                         s = s + dt * dt\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, t(18, 18), c(18, 18), q(18, 18), s\n\
                     integer i, j, it\n\
                     begin\n\
                     do j = 1, 18\n\
                       do i = 1, 18\n\
                         t(i, j) = 20.0 + 0.1 * i * j\n\
                         c(i, j) = 0.2 + 0.001 * (i + j)\n\
                         q(i, j) = 0.5 / (i + j)\n\
                       enddo\n\
                     enddo\n\
                     s = 0\n\
                     do it = 1, 4\n\
                       s = s + deseco(18, t, c, q)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "drepvi",
            origin: "doduc: vessel pressure redistribution (1-D sweeps)",
            entry: "drv",
            source: "function drepvi(n, p, v)\n\
                     integer n, i\n\
                     real drepvi, p(*), v(*), s, dp\n\
                     begin\n\
                     s = 0\n\
                     do i = 2, n - 1\n\
                       dp = 0.25 * (p(i + 1) + p(i - 1) - 2.0 * p(i))\n\
                       p(i) = p(i) + dp\n\
                       v(i) = v(i) - dp / (p(i) + 1.0)\n\
                       s = s + abs(dp)\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, p(36), v(36), s\n\
                     integer i, t\n\
                     begin\n\
                     do i = 1, 36\n\
                       p(i) = 10.0 + sin(0.3 * i)\n\
                       v(i) = 1.0 + 0.02 * i\n\
                     enddo\n\
                     s = 0\n\
                     do t = 1, 4\n\
                       s = s + drepvi(36, p, v)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "drigl",
            origin: "doduc: control-rod drive positioning",
            entry: "drv",
            source: "function drigl(n, z, r)\n\
                     integer n, i\n\
                     real drigl, z(*), r(*), s, zz\n\
                     begin\n\
                     s = 0\n\
                     do i = 1, n\n\
                       zz = z(i)\n\
                       if zz < 0.0 then\n\
                         zz = 0.0\n\
                       endif\n\
                       if zz > 1.0 then\n\
                         zz = 1.0\n\
                       endif\n\
                       r(i) = zz * zz * (3.0 - 2.0 * zz)\n\
                       s = s + r(i)\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, z(30), r(30)\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 30\n\
                       z(i) = 0.1 * i - 1.0\n\
                     enddo\n\
                     return drigl(30, z, r)\n\
                     end\n",
        },
        Routine {
            name: "efill",
            origin: "doduc: element fill with conditional neighbor averaging",
            entry: "drv",
            source: "function efill(n, e)\n\
                     integer n, i, j\n\
                     real efill, e(12, 12), s\n\
                     begin\n\
                     do j = 2, n - 1\n\
                       do i = 2, n - 1\n\
                         if e(i, j) == 0.0 then\n\
                           e(i, j) = 0.25 * (e(i - 1, j) + e(i + 1, j) + e(i, j - 1) + e(i, j + 1))\n\
                         endif\n\
                       enddo\n\
                     enddo\n\
                     s = 0\n\
                     do j = 1, n\n\
                       do i = 1, n\n\
                         s = s + e(i, j)\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, e(12, 12)\n\
                     integer i, j\n\
                     begin\n\
                     do j = 1, 12\n\
                       do i = 1, 12\n\
                         if mod(i + j, 3) == 0 then\n\
                           e(i, j) = 0.0\n\
                         else\n\
                           e(i, j) = 1.0 / (i + j)\n\
                         endif\n\
                       enddo\n\
                     enddo\n\
                     return efill(12, e)\n\
                     end\n",
        },
        Routine {
            name: "heat",
            origin: "doduc: 1-D heat conduction step",
            entry: "drv",
            source: "function heat(n, t)\n\
                     integer n, i\n\
                     real heat, t(*), s, alpha\n\
                     begin\n\
                     alpha = 0.1\n\
                     s = 0\n\
                     do i = 2, n - 1\n\
                       t(i) = t(i) + alpha * (t(i + 1) - 2.0 * t(i) + t(i - 1))\n\
                       s = s + t(i)\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, t(26), s\n\
                     integer i, k\n\
                     begin\n\
                     do i = 1, 26\n\
                       t(i) = 100.0 / i\n\
                     enddo\n\
                     s = 0\n\
                     do k = 1, 5\n\
                       s = heat(26, t)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "hmoy",
            origin: "doduc: harmonic means (tiny routine, like the paper's 47-op row)",
            entry: "drv",
            source: "function hmoy(a, b, c, d)\n\
                     real hmoy, a, b, c, d\n\
                     begin\n\
                     return 4.0 / (1.0 / a + 1.0 / b + 1.0 / c + 1.0 / d)\n\
                     end\n\
                     function drv()\n\
                     real drv\n\
                     begin\n\
                     return hmoy(1.0, 2.0, 3.0, 4.0) + hmoy(2.0, 2.0, 2.0, 2.0)\n\
                     end\n",
        },
        Routine {
            name: "ihbtr",
            origin: "doduc: table index histogramming (integer heavy)",
            entry: "drv",
            source: "function ihbtr(n, v)\n\
                     integer ihbtr, n, i, k, hist(8)\n\
                     real v(*)\n\
                     begin\n\
                     do i = 1, 8\n\
                       hist(i) = 0\n\
                     enddo\n\
                     do i = 1, n\n\
                       k = int(v(i) * 8.0) + 1\n\
                       k = max(1, min(8, k))\n\
                       hist(k) = hist(k) + 1\n\
                     enddo\n\
                     k = 0\n\
                     do i = 1, 8\n\
                       k = k + i * hist(i)\n\
                     enddo\n\
                     return k\n\
                     end\n\
                     function drv()\n\
                     integer drv, i\n\
                     real v(32)\n\
                     begin\n\
                     do i = 1, 32\n\
                       v(i) = mod(0.37 * i, 1.0)\n\
                     enddo\n\
                     return ihbtr(32, v)\n\
                     end\n",
        },
        Routine {
            name: "inideb",
            origin: "doduc: debit initialization tables",
            entry: "drv",
            source: "function inideb(n, q0, qt)\n\
                     integer n, i\n\
                     real inideb, q0(*), qt(*), s\n\
                     begin\n\
                     s = 0\n\
                     do i = 1, n\n\
                       q0(i) = 1.0 + 0.5 * sin(0.2 * i)\n\
                       qt(i) = q0(i) * (1.0 + 0.1 * cos(0.1 * i))\n\
                       s = s + qt(i) - q0(i)\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, q0(20), qt(20)\n\
                     begin\n\
                     return inideb(20, q0, qt)\n\
                     end\n",
        },
        Routine {
            name: "integr",
            origin: "doduc: composite Simpson integration",
            entry: "drv",
            source: "function ifun(x)\n\
                     real ifun, x\n\
                     begin\n\
                     return 1.0 / (1.0 + x * x)\n\
                     end\n\
                     function integr(a, b, n)\n\
                     real integr, a, b, h, s, x\n\
                     integer n, i\n\
                     begin\n\
                     h = (b - a) / (2 * n)\n\
                     s = ifun(a) + ifun(b)\n\
                     do i = 1, 2 * n - 1\n\
                       x = a + h * i\n\
                       if mod(i, 2) == 1 then\n\
                         s = s + 4.0 * ifun(x)\n\
                       else\n\
                         s = s + 2.0 * ifun(x)\n\
                       endif\n\
                     enddo\n\
                     return s * h / 3.0\n\
                     end\n\
                     function drv()\n\
                     real drv\n\
                     begin\n\
                     return integr(0.0, 1.0, 20) * 4.0\n\
                     end\n",
        },
        Routine {
            name: "orgpar",
            origin: "doduc: parameter organization (scalar bookkeeping)",
            entry: "drv",
            source: "function orgpar(t, p, r)\n\
                     real orgpar, t, p, r, a, b, c\n\
                     begin\n\
                     a = t * (1.0 + p / 100.0)\n\
                     b = t * (1.0 - p / 100.0)\n\
                     c = (a - b) * r\n\
                     if c < 0.0 then\n\
                       c = -c\n\
                     endif\n\
                     return a + b + c\n\
                     end\n\
                     function drv()\n\
                     real drv, s, t\n\
                     integer i\n\
                     begin\n\
                     s = 0\n\
                     t = 300.0\n\
                     do i = 1, 8\n\
                       s = s + orgpar(t, 1.0 * i, 0.5)\n\
                       t = t + 10.0\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "paroi",
            origin: "doduc: wall heat-transfer correlation sweep",
            entry: "drv",
            source: "function paroi(n, tw, tf, h)\n\
                     integer n, i\n\
                     real paroi, tw(*), tf(*), h(*), s, dt, q\n\
                     begin\n\
                     s = 0\n\
                     do i = 1, n\n\
                       dt = tw(i) - tf(i)\n\
                       q = h(i) * dt\n\
                       if dt > 10.0 then\n\
                         q = q * (1.0 + 0.01 * (dt - 10.0))\n\
                       endif\n\
                       tw(i) = tw(i) - 0.001 * q\n\
                       s = s + q\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, tw(28), tf(28), h(28), s\n\
                     integer i, k\n\
                     begin\n\
                     do i = 1, 28\n\
                       tw(i) = 350.0 + 1.0 * i\n\
                       tf(i) = 300.0 + 0.5 * i\n\
                       h(i) = 0.8 + 0.01 * i\n\
                     enddo\n\
                     s = 0\n\
                     do k = 1, 4\n\
                       s = s + paroi(28, tw, tf, h)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "pastem",
            origin: "doduc: time-step advancement with stability limits",
            entry: "drv",
            source: "function pastem(n, dtold, err)\n\
                     integer n, i\n\
                     real pastem, dtold, err, dt, s\n\
                     begin\n\
                     dt = dtold\n\
                     s = 0\n\
                     do i = 1, n\n\
                       if err * dt > 0.1 then\n\
                         dt = dt * 0.8\n\
                       elseif err * dt < 0.01 then\n\
                         dt = dt * 1.25\n\
                       endif\n\
                       dt = min(dt, 2.0)\n\
                       dt = max(dt, 0.001)\n\
                       s = s + dt\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, s, e\n\
                     integer i\n\
                     begin\n\
                     s = 0\n\
                     e = 0.004\n\
                     do i = 1, 10\n\
                       s = s + pastem(12, 0.5, e)\n\
                       e = e * 1.5\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "prophy",
            origin: "doduc: physical property evaluation (piecewise correlations)",
            entry: "drv",
            source: "function prophy(t)\n\
                     real prophy, t, rho, mu, k\n\
                     begin\n\
                     if t < 273.0 then\n\
                       rho = 1000.0\n\
                       mu = 0.0018\n\
                     elseif t < 373.0 then\n\
                       rho = 1000.0 - 0.2 * (t - 273.0)\n\
                       mu = 0.0018 - 0.00001 * (t - 273.0)\n\
                     else\n\
                       rho = 960.0 - 0.5 * (t - 373.0)\n\
                       mu = 0.0008\n\
                     endif\n\
                     k = 0.55 + 0.001 * t - 0.000001 * t * t\n\
                     return rho * k / (mu * 1000.0)\n\
                     end\n\
                     function drv()\n\
                     real drv, s, t\n\
                     integer i\n\
                     begin\n\
                     s = 0\n\
                     t = 250.0\n\
                     do i = 1, 16\n\
                       s = s + prophy(t)\n\
                       t = t + 12.5\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "repvid",
            origin: "doduc: void-fraction replacement over channels",
            entry: "drv",
            source: "function repvid(n, m, alpha)\n\
                     integer n, m, i, j\n\
                     real repvid, alpha(16, 8), s, a\n\
                     begin\n\
                     s = 0\n\
                     do j = 1, m\n\
                       do i = 1, n\n\
                         a = alpha(i, j)\n\
                         a = a + 0.1 * (0.5 - a) * a * (1.0 - a)\n\
                         alpha(i, j) = a\n\
                         s = s + a\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, alpha(16, 8), s\n\
                     integer i, j, k\n\
                     begin\n\
                     do j = 1, 8\n\
                       do i = 1, 16\n\
                         alpha(i, j) = mod(0.13 * i + 0.29 * j, 1.0)\n\
                       enddo\n\
                     enddo\n\
                     s = 0\n\
                     do k = 1, 5\n\
                       s = s + repvid(16, 8, alpha)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "saturr",
            origin: "doduc: saturation temperature table with Newton refinement",
            entry: "drv",
            source: "function saturr(p)\n\
                     real saturr, p, t, f, df\n\
                     integer i\n\
                     begin\n\
                     t = 373.0 + 10.0 * log(p)\n\
                     do i = 1, 4\n\
                       f = exp((t - 373.0) / 20.0) - p\n\
                       df = exp((t - 373.0) / 20.0) / 20.0\n\
                       t = t - f / df\n\
                     enddo\n\
                     return t\n\
                     end\n\
                     function drv()\n\
                     real drv, s, p\n\
                     integer i\n\
                     begin\n\
                     s = 0\n\
                     p = 0.5\n\
                     do i = 1, 10\n\
                       s = s + saturr(p)\n\
                       p = p + 0.4\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "si",
            origin: "doduc: cubic interpolation helper (the paper's 206-op row)",
            entry: "drv",
            source: "function si(u, x1, x2, f1, f2, d1, d2)\n\
                     real si, u, x1, x2, f1, f2, d1, d2, h, t, a, b\n\
                     begin\n\
                     h = x2 - x1\n\
                     t = (u - x1) / h\n\
                     a = f1 * (1.0 + 2.0 * t) * (1.0 - t) * (1.0 - t) + f2 * t * t * (3.0 - 2.0 * t)\n\
                     b = d1 * h * t * (1.0 - t) * (1.0 - t) - d2 * h * t * t * (1.0 - t)\n\
                     return a + b\n\
                     end\n\
                     function drv()\n\
                     real drv, s, u\n\
                     integer i\n\
                     begin\n\
                     s = 0\n\
                     u = 0.1\n\
                     do i = 1, 8\n\
                       s = s + si(u, 0.0, 1.0, 2.0, 3.0, 0.5, -0.5)\n\
                       u = u + 0.1\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "supp",
            origin: "doduc: support/suppression sweep over assemblies",
            entry: "drv",
            source: "function supp(n, w)\n\
                     integer n, i\n\
                     real supp, w(*), s\n\
                     begin\n\
                     s = 0\n\
                     do i = 1, n\n\
                       if w(i) > 0.0 then\n\
                         s = s + sqrt(w(i))\n\
                       else\n\
                         s = s + w(i) * w(i)\n\
                       endif\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, w(34), s\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 34\n\
                       w(i) = sin(0.5 * i)\n\
                     enddo\n\
                     s = supp(34, w)\n\
                     return s + supp(34, w)\n\
                     end\n",
        },
        Routine {
            name: "subb",
            origin: "doduc: subassembly bookkeeping (loop with early classes)",
            entry: "drv",
            source: "function subb(n, a, b)\n\
                     integer n, i\n\
                     real subb, a(*), b(*), s\n\
                     begin\n\
                     s = 0\n\
                     do i = 1, n\n\
                       b(i) = a(i) * 0.5 + 1.0\n\
                       s = s + b(i) * a(i)\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv, a(40), b(40), s\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 40\n\
                       a(i) = 0.05 * i\n\
                     enddo\n\
                     s = subb(40, a, b)\n\
                     return s + subb(40, b, a)\n\
                     end\n",
        },
        Routine {
            name: "tvldrv",
            origin: "doduc: top-level transient driver (calls several kernels)",
            entry: "drv",
            source: "function step(n, u, dt)\n\
                     integer n, i\n\
                     real step, u(*), dt, s\n\
                     begin\n\
                     s = 0\n\
                     do i = 2, n - 1\n\
                       u(i) = u(i) + dt * (u(i + 1) - 2.0 * u(i) + u(i - 1))\n\
                       s = s + u(i)\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function tvldrv(n, nstep)\n\
                     integer n, nstep, k, i\n\
                     real tvldrv, u(40), s, dt\n\
                     begin\n\
                     do i = 1, n\n\
                       u(i) = 1.0 + sin(0.25 * i)\n\
                     enddo\n\
                     dt = 0.2\n\
                     s = 0\n\
                     do k = 1, nstep\n\
                       s = s + step(n, u, dt)\n\
                       if mod(k, 4) == 0 then\n\
                         dt = dt * 0.95\n\
                       endif\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv\n\
                     begin\n\
                     return tvldrv(40, 25)\n\
                     end\n",
        },
    ]
}
