//! Routines modeled on Forsythe, Malcolm & Moler, *Computer Methods for
//! Mathematical Computations* (the paper's reference [16]): `fmin`,
//! `zeroin`, `spline`, `seval`, `decomp`, `solve`, `svd`, `rkf45`,
//! `rkfs`, `fehl`, `urand`.

use crate::Routine;

/// The FMM group.
pub fn routines() -> Vec<Routine> {
    vec![
        Routine {
            name: "fmin",
            origin: "FMM ch.8: golden-section/parabolic minimization",
            entry: "drv",
            source: "function ffn(x)\n\
                     real x\n\
                     begin\n\
                     return (x - 1.6) * (x - 1.6) + 0.3\n\
                     end\n\
                     function fmin(ax, bx, tol)\n\
                     real ax, bx, tol, a, b, c, xl, xr, fl, fr\n\
                     begin\n\
                     c = 0.381966011\n\
                     a = ax\n\
                     b = bx\n\
                     while b - a > tol do\n\
                       xl = a + c * (b - a)\n\
                       xr = b - c * (b - a)\n\
                       fl = ffn(xl)\n\
                       fr = ffn(xr)\n\
                       if fl < fr then\n\
                         b = xr\n\
                       else\n\
                         a = xl\n\
                       endif\n\
                     endwhile\n\
                     return 0.5 * (a + b)\n\
                     end\n\
                     function drv()\n\
                     real drv, xmin\n\
                     begin\n\
                     xmin = fmin(0.0, 4.0, 0.0001)\n\
                     return xmin + ffn(xmin)\n\
                     end\n",
        },
        Routine {
            name: "zeroin",
            origin: "FMM ch.7: root finding (bisection/secant hybrid)",
            entry: "drv",
            source: "function gfn(x)\n\
                     real x\n\
                     begin\n\
                     return x * x * x - 2.0 * x - 5.0\n\
                     end\n\
                     function zeroin(ax, bx, tol)\n\
                     real ax, bx, tol, a, b, fa, fb, m, fm, s\n\
                     begin\n\
                     a = ax\n\
                     b = bx\n\
                     fa = gfn(a)\n\
                     fb = gfn(b)\n\
                     while b - a > tol do\n\
                       m = 0.5 * (a + b)\n\
                       ! secant proposal, clipped to the bracket\n\
                       if abs(fb - fa) > 0.000001 then\n\
                         s = b - fb * (b - a) / (fb - fa)\n\
                         if s > a .and. s < b then\n\
                           m = s\n\
                         endif\n\
                       endif\n\
                       fm = gfn(m)\n\
                       if sign(1.0, fm) == sign(1.0, fa) then\n\
                         a = m\n\
                         fa = fm\n\
                       else\n\
                         b = m\n\
                         fb = fm\n\
                       endif\n\
                     endwhile\n\
                     return 0.5 * (a + b)\n\
                     end\n\
                     function drv()\n\
                     real drv, r\n\
                     begin\n\
                     r = zeroin(2.0, 3.0, 0.00001)\n\
                     return r + gfn(r)\n\
                     end\n",
        },
        Routine {
            name: "spline",
            origin: "FMM ch.4: cubic spline coefficient setup",
            entry: "drv",
            source: "subroutine spline(n, x, y, b, c, d)\n\
                     integer n, i\n\
                     real x(*), y(*), b(*), c(*), d(*), t\n\
                     begin\n\
                     d(1) = x(2) - x(1)\n\
                     c(2) = (y(2) - y(1)) / d(1)\n\
                     do i = 2, n - 1\n\
                       d(i) = x(i + 1) - x(i)\n\
                       b(i) = 2.0 * (d(i - 1) + d(i))\n\
                       c(i + 1) = (y(i + 1) - y(i)) / d(i)\n\
                       c(i) = c(i + 1) - c(i)\n\
                     enddo\n\
                     ! forward elimination of the tridiagonal system\n\
                     do i = 3, n - 1\n\
                       t = d(i - 1) / b(i - 1)\n\
                       b(i) = b(i) - t * d(i - 1)\n\
                       c(i) = c(i) - t * c(i - 1)\n\
                     enddo\n\
                     c(n - 1) = c(n - 1) / b(n - 1)\n\
                     do i = n - 2, 2, -1\n\
                       c(i) = (c(i) - d(i) * c(i + 1)) / b(i)\n\
                     enddo\n\
                     end\n\
                     function drv()\n\
                     real drv, x(24), y(24), b(24), c(24), d(24), s\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 24\n\
                       x(i) = 0.25 * i\n\
                       y(i) = x(i) * x(i) - 3.0 * x(i)\n\
                     enddo\n\
                     call spline(24, x, y, b, c, d)\n\
                     s = 0\n\
                     do i = 2, 23\n\
                       s = s + c(i)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "seval",
            origin: "FMM ch.4: spline evaluation with interval search",
            entry: "drv",
            source: "function seval(n, u, x, y, b, c, d)\n\
                     integer n, i, j, k\n\
                     real seval, u, x(*), y(*), b(*), c(*), d(*), dx\n\
                     begin\n\
                     i = 1\n\
                     j = n + 1\n\
                     while j > i + 1 do\n\
                       k = (i + j) / 2\n\
                       if u < x(k) then\n\
                         j = k\n\
                       else\n\
                         i = k\n\
                       endif\n\
                     endwhile\n\
                     dx = u - x(i)\n\
                     return y(i) + dx * (b(i) + dx * (c(i) + dx * d(i)))\n\
                     end\n\
                     function drv()\n\
                     real drv, x(16), y(16), b(16), c(16), d(16), s, u\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 16\n\
                       x(i) = 1.0 * i\n\
                       y(i) = 0.5 * i * i\n\
                       b(i) = 0.1 * i\n\
                       c(i) = 0.01 * i\n\
                       d(i) = 0.001 * i\n\
                     enddo\n\
                     s = 0\n\
                     u = 0.5\n\
                     do i = 1, 20\n\
                       s = s + seval(16, u, x, y, b, c, d)\n\
                       u = u + 0.7\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "decomp",
            origin: "FMM ch.3: LU decomposition (diagonally dominant, no pivoting)",
            entry: "drv",
            source: "subroutine decomp(n, a)\n\
                     integer n, i, j, k\n\
                     real a(12, 12), t\n\
                     begin\n\
                     do k = 1, n - 1\n\
                       do i = k + 1, n\n\
                         t = a(i, k) / a(k, k)\n\
                         a(i, k) = t\n\
                         do j = k + 1, n\n\
                           a(i, j) = a(i, j) - t * a(k, j)\n\
                         enddo\n\
                       enddo\n\
                     enddo\n\
                     end\n\
                     function drv()\n\
                     real drv, a(12, 12), s\n\
                     integer i, j\n\
                     begin\n\
                     do i = 1, 12\n\
                       do j = 1, 12\n\
                         a(i, j) = 1.0 / (i + j)\n\
                       enddo\n\
                       a(i, i) = a(i, i) + 4.0\n\
                     enddo\n\
                     call decomp(12, a)\n\
                     s = 0\n\
                     do i = 1, 12\n\
                       s = s + a(i, i)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "solve",
            origin: "FMM ch.3: forward/back substitution after decomp",
            entry: "drv",
            source: "subroutine solve(n, a, b)\n\
                     integer n, i, j\n\
                     real a(12, 12), b(*), t\n\
                     begin\n\
                     do i = 2, n\n\
                       t = b(i)\n\
                       do j = 1, i - 1\n\
                         t = t - a(i, j) * b(j)\n\
                       enddo\n\
                       b(i) = t\n\
                     enddo\n\
                     do i = n, 1, -1\n\
                       t = b(i)\n\
                       do j = i + 1, n\n\
                         t = t - a(i, j) * b(j)\n\
                       enddo\n\
                       b(i) = t / a(i, i)\n\
                     enddo\n\
                     end\n\
                     function drv()\n\
                     real drv, a(12, 12), b(12), s\n\
                     integer i, j\n\
                     begin\n\
                     do i = 1, 12\n\
                       do j = 1, 12\n\
                         a(i, j) = 1.0 / (i + j)\n\
                       enddo\n\
                       a(i, i) = a(i, i) + 4.0\n\
                       b(i) = 1.0 * i\n\
                     enddo\n\
                     call solve(12, a, b)\n\
                     s = 0\n\
                     do i = 1, 12\n\
                       s = s + b(i)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "svd",
            origin: "FMM ch.9 flavor: one-sided Jacobi orthogonalization sweeps",
            entry: "drv",
            source: "function svd(n, a)\n\
                     integer n, i, j, k, sweep\n\
                     real svd, a(10, 10), p, q, r, c, s, t, ai, aj\n\
                     begin\n\
                     do sweep = 1, 3\n\
                       do j = 2, n\n\
                         do i = 1, j - 1\n\
                           p = 0\n\
                           q = 0\n\
                           r = 0\n\
                           do k = 1, n\n\
                             p = p + a(k, i) * a(k, j)\n\
                             q = q + a(k, i) * a(k, i)\n\
                             r = r + a(k, j) * a(k, j)\n\
                           enddo\n\
                           if abs(p) > 0.000001 * sqrt(q * r) then\n\
                             t = (r - q) / (2.0 * p)\n\
                             s = sign(1.0, t) / (abs(t) + sqrt(1.0 + t * t))\n\
                             c = 1.0 / sqrt(1.0 + s * s)\n\
                             s = c * s\n\
                             do k = 1, n\n\
                               ai = a(k, i)\n\
                               aj = a(k, j)\n\
                               a(k, i) = c * ai - s * aj\n\
                               a(k, j) = s * ai + c * aj\n\
                             enddo\n\
                           endif\n\
                         enddo\n\
                       enddo\n\
                     enddo\n\
                     t = 0\n\
                     do j = 1, n\n\
                       q = 0\n\
                       do k = 1, n\n\
                         q = q + a(k, j) * a(k, j)\n\
                       enddo\n\
                       t = t + sqrt(q)\n\
                     enddo\n\
                     return t\n\
                     end\n\
                     function drv()\n\
                     real drv, a(10, 10)\n\
                     integer i, j\n\
                     begin\n\
                     do i = 1, 8\n\
                       do j = 1, 8\n\
                         a(i, j) = 1.0 / (i + j - 1)\n\
                       enddo\n\
                     enddo\n\
                     return svd(8, a)\n\
                     end\n",
        },
        Routine {
            name: "fehl",
            origin: "FMM ch.6: the 6-stage Runge-Kutta-Fehlberg step",
            entry: "drv",
            source: "function fprime(t, y)\n\
                     real fprime, t, y\n\
                     begin\n\
                     return -2.0 * t * y\n\
                     end\n\
                     function fehl(t, y, h)\n\
                     real fehl, t, y, h, k1, k2, k3, k4, k5, k6\n\
                     begin\n\
                     k1 = h * fprime(t, y)\n\
                     k2 = h * fprime(t + 0.25 * h, y + 0.25 * k1)\n\
                     k3 = h * fprime(t + 0.375 * h, y + 0.09375 * k1 + 0.28125 * k2)\n\
                     k4 = h * fprime(t + 0.9230769 * h, y + 0.8793810 * k1 - 3.2771961 * k2 + 3.3208921 * k3)\n\
                     k5 = h * fprime(t + h, y + 2.0324074 * k1 - 8.0 * k2 + 7.1734892 * k3 - 0.2058966 * k4)\n\
                     k6 = h * fprime(t + 0.5 * h, y - 0.2962962 * k1 + 2.0 * k2 - 1.3816764 * k3 + 0.4529727 * k4 - 0.275 * k5)\n\
                     return y + 0.1185185 * k1 + 0.5189863 * k3 + 0.5061314 * k4 - 0.18 * k5 + 0.0363636 * k6\n\
                     end\n\
                     function drv()\n\
                     real drv, t, y, h\n\
                     integer i\n\
                     begin\n\
                     t = 0\n\
                     y = 1.0\n\
                     h = 0.1\n\
                     do i = 1, 10\n\
                       y = fehl(t, y, h)\n\
                       t = t + h\n\
                     enddo\n\
                     return y\n\
                     end\n",
        },
        Routine {
            name: "rkfs",
            origin: "FMM ch.6: RKF stepping driver with error control",
            entry: "drv",
            source: "function gprime(t, y)\n\
                     real gprime, t, y\n\
                     begin\n\
                     return y - t * t + 1.0\n\
                     end\n\
                     function rkfs(t0, t1, y0, tol)\n\
                     real rkfs, t0, t1, y0, tol, t, y, h, k1, k2, k3, k4, y4, y5, err\n\
                     begin\n\
                     t = t0\n\
                     y = y0\n\
                     h = 0.25\n\
                     while t < t1 do\n\
                       if t + h > t1 then\n\
                         h = t1 - t\n\
                       endif\n\
                       k1 = h * gprime(t, y)\n\
                       k2 = h * gprime(t + 0.5 * h, y + 0.5 * k1)\n\
                       k3 = h * gprime(t + 0.5 * h, y + 0.5 * k2)\n\
                       k4 = h * gprime(t + h, y + k3)\n\
                       y4 = y + (k1 + 2.0 * k2 + 2.0 * k3 + k4) / 6.0\n\
                       y5 = y + (k1 + 4.0 * k2 + k4) / 6.0\n\
                       err = abs(y5 - y4)\n\
                       if err < tol then\n\
                         t = t + h\n\
                         y = y4\n\
                         h = h * 1.5\n\
                       else\n\
                         h = h * 0.5\n\
                       endif\n\
                     endwhile\n\
                     return y\n\
                     end\n\
                     function drv()\n\
                     real drv\n\
                     begin\n\
                     return rkfs(0.0, 2.0, 0.5, 0.01)\n\
                     end\n",
        },
        Routine {
            name: "rkf45",
            origin: "FMM ch.6: user-level RKF45 wrapper (re-entry protocol)",
            entry: "drv",
            source: "function hprime(t, y)\n\
                     real hprime, t, y\n\
                     begin\n\
                     return 0.25 * y * (1.0 - y / 20.0)\n\
                     end\n\
                     function rkstep(t, y, h)\n\
                     real rkstep, t, y, h, k1, k2, k3, k4\n\
                     begin\n\
                     k1 = h * hprime(t, y)\n\
                     k2 = h * hprime(t + 0.5 * h, y + 0.5 * k1)\n\
                     k3 = h * hprime(t + 0.5 * h, y + 0.5 * k2)\n\
                     k4 = h * hprime(t + h, y + k3)\n\
                     return y + (k1 + 2.0 * k2 + 2.0 * k3 + k4) / 6.0\n\
                     end\n\
                     function rkf45(t0, t1, y0, nstep)\n\
                     real rkf45, t0, t1, y0, t, y, h\n\
                     integer nstep, i\n\
                     begin\n\
                     h = (t1 - t0) / nstep\n\
                     t = t0\n\
                     y = y0\n\
                     do i = 1, nstep\n\
                       y = rkstep(t, y, h)\n\
                       t = t + h\n\
                     enddo\n\
                     return y\n\
                     end\n\
                     function drv()\n\
                     real drv\n\
                     begin\n\
                     return rkf45(0.0, 10.0, 1.0, 8)\n\
                     end\n",
        },
        Routine {
            name: "urand",
            origin: "FMM ch.10: linear congruential uniform generator",
            entry: "drv",
            source: "function urand(iy)\n\
                     real urand\n\
                     integer iy, ia, ic, m\n\
                     begin\n\
                     ia = 1103\n\
                     ic = 28411\n\
                     m = 134456\n\
                     iy = mod(iy * ia + ic, m)\n\
                     return float(iy) / 134456.0\n\
                     end\n\
                     function drv()\n\
                     real drv, s, u\n\
                     integer iy, i\n\
                     begin\n\
                     iy = 12345\n\
                     s = 0\n\
                     do i = 1, 25\n\
                       iy = mod(iy * 1103 + 28411, 134456)\n\
                       u = float(iy) / 134456.0\n\
                       s = s + u\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
    ]
}
