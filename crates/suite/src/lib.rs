//! # epre-suite — the benchmark routine suite
//!
//! The paper's test suite "consists of 50 routines, drawn from the Spec
//! benchmark suite and from Forsythe, Malcolm, and Moler's book on
//! numerical methods". The original FORTRAN sources are not distributable,
//! so this crate provides **50 mini-FORTRAN routines with the same names
//! and the same computational shapes**: the FMM numerical routines
//! (`fmin`, `zeroin`, `spline`, `seval`, `decomp`, `solve`, `svd`,
//! `rkf45`/`rkfs`/`fehl`, `urand`), the BLAS-style kernels (`saxpy`,
//! `sgemv`, `sgemm`), the Spec mesh/physics kernels (`tomcatv`, and the
//! doduc-flavoured routines `bilan` … `yeh`), and the table-generation
//! and bookkeeping routines (`gamgen`, `fmtset`, `fmtgen`, …).
//!
//! Each [`Routine`] is a self-contained program with a driver function
//! that fixes the workload (sizes reduced exactly as the paper reduced
//! `matrix300` and `tomcatv` "to ease testing") and returns a checksum,
//! so every optimization level can be validated against every other.
//!
//! ```
//! let suite = epre_suite::all_routines();
//! assert_eq!(suite.len(), 50);
//! let fmin = suite.iter().find(|r| r.name == "fmin").unwrap();
//! let module = fmin.compile(epre_frontend::NamingMode::Disciplined).unwrap();
//! assert!(module.function(fmin.entry).is_some());
//! ```

mod blas;
mod doduc;
mod fmm;
mod misc;

use epre_frontend::{compile, FrontendError, NamingMode};
use epre_ir::Module;

/// One suite routine: a named mini-FORTRAN program plus its driver.
#[derive(Debug, Clone)]
pub struct Routine {
    /// The routine's name, matching the paper's Tables 1 and 2.
    pub name: &'static str,
    /// Complete mini-FORTRAN source (kernel + driver).
    pub source: &'static str,
    /// Driver function to execute; takes no arguments and returns a
    /// checksum.
    pub entry: &'static str,
    /// Provenance note: which part of the paper's suite it models.
    pub origin: &'static str,
}

impl Routine {
    /// Compile the routine under the given naming mode.
    ///
    /// # Errors
    /// Returns the front end's error; the bundled sources always compile
    /// (the test suite checks).
    pub fn compile(&self, mode: NamingMode) -> Result<Module, FrontendError> {
        compile(self.source, mode)
    }
}

/// All 50 routines, in the paper's Table 2 (alphabetical) order.
pub fn all_routines() -> Vec<Routine> {
    let mut v = Vec::new();
    v.extend(fmm::routines());
    v.extend(blas::routines());
    v.extend(doduc::routines());
    v.extend(misc::routines());
    v.sort_by_key(|r| r.name);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fifty_unique_routines() {
        let suite = all_routines();
        assert_eq!(suite.len(), 50, "the paper's suite has 50 routines");
        let mut names: Vec<&str> = suite.iter().map(|r| r.name).collect();
        names.dedup();
        assert_eq!(names.len(), 50, "routine names unique");
    }

    #[test]
    fn matches_paper_table2_names() {
        let expected = [
            "bilan", "cardeb", "coeray", "colbur", "dcoera", "ddeflu", "debflu", "debico",
            "decomp", "deseco", "drepvi", "drigl", "efill", "fehl", "fmin", "fmtgen", "fmtset",
            "fpppp", "gamgen", "heat", "hmoy", "ihbtr", "inideb", "iniset", "inithx", "integr",
            "orgpar", "paroi", "pastem", "prophy", "repvid", "rkf45", "rkfs", "saturr", "saxpy",
            "seval", "sgemm", "sgemv", "si", "solve", "spline", "subb", "supp", "svd", "tomcatv",
            "tvldrv", "urand", "x21y21", "yeh", "zeroin",
        ];
        let names: Vec<&str> = all_routines().iter().map(|r| r.name).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn every_routine_compiles_in_both_naming_modes() {
        for r in all_routines() {
            for mode in [NamingMode::Simple, NamingMode::Disciplined] {
                let m = r
                    .compile(mode)
                    .unwrap_or_else(|e| panic!("{} ({mode:?}): {e}", r.name));
                assert!(m.function(r.entry).is_some(), "{}: entry `{}`", r.name, r.entry);
                m.verify().unwrap_or_else(|e| panic!("{}: {e}", r.name));
            }
        }
    }

    #[test]
    fn every_routine_runs_unoptimized() {
        for r in all_routines() {
            let m = r.compile(NamingMode::Disciplined).unwrap();
            let mut i = epre_interp::Interpreter::new(&m);
            let out = i.run(r.entry, &[]);
            assert!(out.is_ok(), "{}: {:?}", r.name, out.err());
            assert!(out.unwrap().is_some(), "{}: driver must return a checksum", r.name);
            assert!(i.counts().total > 20, "{}: workload too trivial", r.name);
        }
    }
}
