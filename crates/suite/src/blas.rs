//! BLAS-style kernels (`saxpy`, `sgemv`, `sgemm`) and the Spec `tomcatv`
//! mesh kernel (size reduced, as in the paper's footnote: "the sizes of
//! the test cases for matrix300 and tomcatv have been reduced to ease
//! testing").

use crate::Routine;

/// The linear-algebra group.
pub fn routines() -> Vec<Routine> {
    vec![
        Routine {
            name: "saxpy",
            origin: "BLAS level 1: y = a*x + y",
            entry: "drv",
            source: "subroutine saxpy(n, a, x, y)\n\
                     integer n, i\n\
                     real a, x(*), y(*)\n\
                     begin\n\
                     do i = 1, n\n\
                       y(i) = a * x(i) + y(i)\n\
                     enddo\n\
                     end\n\
                     function drv()\n\
                     real drv, x(32), y(32), s\n\
                     integer i\n\
                     begin\n\
                     do i = 1, 32\n\
                       x(i) = 0.5 * i\n\
                       y(i) = 32.0 - i\n\
                     enddo\n\
                     call saxpy(32, 2.0, x, y)\n\
                     call saxpy(32, -1.0, y, x)\n\
                     s = 0\n\
                     do i = 1, 32\n\
                       s = s + x(i) + y(i)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "sgemv",
            origin: "BLAS level 2: y = A*x + y, column-major inner loops",
            entry: "drv",
            source: "subroutine sgemv(n, a, x, y)\n\
                     integer n, i, j\n\
                     real a(16, 16), x(*), y(*), t\n\
                     begin\n\
                     do j = 1, n\n\
                       t = x(j)\n\
                       do i = 1, n\n\
                         y(i) = y(i) + a(i, j) * t\n\
                       enddo\n\
                     enddo\n\
                     end\n\
                     function drv()\n\
                     real drv, a(16, 16), x(16), y(16), s\n\
                     integer i, j\n\
                     begin\n\
                     do j = 1, 16\n\
                       do i = 1, 16\n\
                         a(i, j) = 1.0 / (i + j)\n\
                       enddo\n\
                       x(j) = 1.0 * j\n\
                       y(j) = 0\n\
                     enddo\n\
                     call sgemv(16, a, x, y)\n\
                     s = 0\n\
                     do i = 1, 16\n\
                       s = s + y(i)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "sgemm",
            origin: "BLAS level 3: C = A*B, triple loop",
            entry: "drv",
            source: "subroutine sgemm(n, a, b, c)\n\
                     integer n, i, j, k\n\
                     real a(10, 10), b(10, 10), c(10, 10), t\n\
                     begin\n\
                     do j = 1, n\n\
                       do i = 1, n\n\
                         t = 0\n\
                         do k = 1, n\n\
                           t = t + a(i, k) * b(k, j)\n\
                         enddo\n\
                         c(i, j) = t\n\
                       enddo\n\
                     enddo\n\
                     end\n\
                     function drv()\n\
                     real drv, a(10, 10), b(10, 10), c(10, 10), s\n\
                     integer i, j\n\
                     begin\n\
                     do j = 1, 10\n\
                       do i = 1, 10\n\
                         a(i, j) = 0.1 * i + 0.2 * j\n\
                         b(i, j) = 1.0 / (i + j)\n\
                       enddo\n\
                     enddo\n\
                     call sgemm(10, a, b, c)\n\
                     s = 0\n\
                     do i = 1, 10\n\
                       s = s + c(i, i)\n\
                     enddo\n\
                     return s\n\
                     end\n",
        },
        Routine {
            name: "tomcatv",
            origin: "Spec: vectorized mesh generation (reduced size)",
            entry: "drv",
            source: "function tomcatv()\n\
                     real tomcatv, x(18, 18), y(18, 18), rx(18, 18), ry(18, 18)\n\
                     real xx, yx, xy, yy, a, b, c, qi, qj, pxx, pyy, pxy, qx, qy, s\n\
                     integer i, j, iter, n\n\
                     begin\n\
                     n = 16\n\
                     do j = 1, n + 2\n\
                       do i = 1, n + 2\n\
                         x(i, j) = 0.1 * i + 0.01 * j * j\n\
                         y(i, j) = 0.1 * j + 0.01 * i * i\n\
                       enddo\n\
                     enddo\n\
                     do iter = 1, 3\n\
                       do j = 2, n + 1\n\
                         do i = 2, n + 1\n\
                           xx = x(i + 1, j) - x(i - 1, j)\n\
                           yx = y(i + 1, j) - y(i - 1, j)\n\
                           xy = x(i, j + 1) - x(i, j - 1)\n\
                           yy = y(i, j + 1) - y(i, j - 1)\n\
                           a = 0.25 * (xy * xy + yy * yy)\n\
                           b = 0.25 * (xx * xx + yx * yx)\n\
                           c = 0.125 * (xx * xy + yx * yy)\n\
                           qi = 0\n\
                           qj = 0\n\
                           pxx = x(i + 1, j) - 2.0 * x(i, j) + x(i - 1, j)\n\
                           pyy = x(i, j + 1) - 2.0 * x(i, j) + x(i, j - 1)\n\
                           pxy = x(i + 1, j + 1) - x(i + 1, j - 1) - x(i - 1, j + 1) + x(i - 1, j - 1)\n\
                           qx = a * pxx + b * pyy - c * pxy + xx * qi + xy * qj\n\
                           pxx = y(i + 1, j) - 2.0 * y(i, j) + y(i - 1, j)\n\
                           pyy = y(i, j + 1) - 2.0 * y(i, j) + y(i, j - 1)\n\
                           pxy = y(i + 1, j + 1) - y(i + 1, j - 1) - y(i - 1, j + 1) + y(i - 1, j - 1)\n\
                           qy = a * pxx + b * pyy - c * pxy + yx * qi + yy * qj\n\
                           rx(i, j) = qx\n\
                           ry(i, j) = qy\n\
                         enddo\n\
                       enddo\n\
                       do j = 2, n + 1\n\
                         do i = 2, n + 1\n\
                           x(i, j) = x(i, j) + 0.05 * rx(i, j)\n\
                           y(i, j) = y(i, j) + 0.05 * ry(i, j)\n\
                         enddo\n\
                       enddo\n\
                     enddo\n\
                     s = 0\n\
                     do j = 2, n + 1\n\
                       do i = 2, n + 1\n\
                         s = s + x(i, j) - y(i, j)\n\
                       enddo\n\
                     enddo\n\
                     return s\n\
                     end\n\
                     function drv()\n\
                     real drv\n\
                     begin\n\
                     return tomcatv()\n\
                     end\n",
        },
    ]
}
