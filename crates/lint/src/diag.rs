//! Diagnostics: severities, locations, and the collect-all [`Report`].
//!
//! Every finding a lint rule produces is a [`Diagnostic`]: a stable
//! [`Rule`](crate::rules::Rule), a [`Location`] down to the instruction
//! where possible, and a human-readable message. A [`Report`] accumulates
//! them and renders either compiler-style text or machine-readable JSON
//! (hand-rolled — the workspace carries no serialization dependency).

use std::fmt;

use epre_ir::BlockId;

use crate::rules::Rule;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: stylistic or optimization-opportunity notes that are
    /// normal in intermediate pipeline states (e.g. an unsplit critical
    /// edge).
    Info,
    /// Suspicious but not a broken invariant (e.g. a fully-redundant
    /// expression the optimizer missed, an unreachable block).
    Warning,
    /// A broken IR invariant: the program's meaning is undefined and any
    /// pass that produced this state has a bug.
    Error,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a finding points: always a function, usually a block, sometimes
/// an exact instruction index within the block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Location {
    /// Enclosing function name.
    pub function: String,
    /// Block, when the finding is block-local.
    pub block: Option<BlockId>,
    /// Instruction index within the block, when known.
    pub inst: Option<usize>,
}

impl Location {
    /// A function-level location.
    pub fn function(name: &str) -> Self {
        Location { function: name.to_string(), block: None, inst: None }
    }

    /// A block-level location.
    pub fn block(name: &str, block: BlockId) -> Self {
        Location { function: name.to_string(), block: Some(block), inst: None }
    }

    /// An instruction-level location.
    pub fn inst(name: &str, block: BlockId, inst: usize) -> Self {
        Location { function: name.to_string(), block: Some(block), inst: Some(inst) }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.function)?;
        if let Some(b) = self.block {
            write!(f, "/{b}")?;
            if let Some(i) = self.inst {
                write!(f, ".{i}")?;
            }
        }
        Ok(())
    }
}

/// One finding: a rule, a place, and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Where it fired.
    pub location: Location,
    /// Human-readable description of the specific violation.
    pub message: String,
}

impl Diagnostic {
    /// The severity, determined by the rule.
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }

    /// A stable identity string used for diffing reports between pipeline
    /// stages (pass blame): rule code + location + message.
    pub fn fingerprint(&self) -> String {
        format!("{}|{}|{}", self.rule.code(), self.location, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}-{}] {}: {}",
            self.severity(),
            self.rule.code(),
            self.rule.slug(),
            self.location,
            self.message
        )
    }
}

/// An accumulating collection of diagnostics — the output of a lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in the order the rules produced them.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a finding.
    pub fn push(&mut self, rule: Rule, location: Location, message: String) {
        self.diagnostics.push(Diagnostic { rule, location, message });
    }

    /// Append every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// No findings at all (of any severity).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Warning).count()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Error)
    }

    /// The distinct rule codes that fired, in first-occurrence order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.rule.code()) {
                out.push(d.rule.code());
            }
        }
        out
    }

    /// Render the report as a JSON array of finding objects. Keys:
    /// `code`, `rule`, `severity`, `function`, `block` (number or null),
    /// `inst` (number or null), `message`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"code\":");
            json_string(&mut s, d.rule.code());
            s.push_str(",\"rule\":");
            json_string(&mut s, d.rule.slug());
            s.push_str(",\"severity\":");
            json_string(&mut s, d.severity().label());
            s.push_str(",\"function\":");
            json_string(&mut s, &d.location.function);
            s.push_str(",\"block\":");
            match d.location.block {
                Some(b) => s.push_str(&b.0.to_string()),
                None => s.push_str("null"),
            }
            s.push_str(",\"inst\":");
            match d.location.inst {
                Some(i) => s.push_str(&i.to_string()),
                None => s.push_str("null"),
            }
            s.push_str(",\"message\":");
            json_string(&mut s, &d.message);
            s.push('}');
        }
        s.push(']');
        s
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} finding(s)",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        )
    }
}

/// Append `v` to `s` as a JSON string literal with full escaping.
fn json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_codes() {
        let mut r = Report::new();
        r.push(Rule::UseBeforeDef, Location::block("f", BlockId(2)), "use of r1".into());
        r.push(Rule::CriticalEdge, Location::block("f", BlockId(0)), "edge".into());
        r.push(Rule::UseBeforeDef, Location::block("f", BlockId(3)), "use of r2".into());
        assert_eq!(r.error_count(), 2);
        assert!(r.has_errors());
        assert_eq!(r.codes(), vec!["L020", "L031"]);
    }

    #[test]
    fn json_escapes_and_nulls() {
        let mut r = Report::new();
        r.push(Rule::NoBlocks, Location::function("f\"g"), "no \"blocks\"\n".into());
        let j = r.to_json();
        assert!(j.contains("\"function\":\"f\\\"g\""), "{j}");
        assert!(j.contains("\"block\":null"), "{j}");
        assert!(j.contains("no \\\"blocks\\\"\\n"), "{j}");
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn display_mentions_code_and_location() {
        let mut r = Report::new();
        r.push(Rule::TypeMismatch, Location::inst("f", BlockId(1), 4), "bad type".into());
        let text = format!("{r}");
        assert!(text.contains("error[L004-type-mismatch] f/b1.4: bad type"), "{text}");
    }
}
