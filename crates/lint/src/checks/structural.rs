//! Structural rule family (`L001`–`L008`): the collect-all structural
//! verifier of `epre-ir`, mapped onto stable rule codes.

use epre_ir::verify::is_fatal;
use epre_ir::{verify_function_all, Function, VerifyErrorKind};

use crate::diag::{Location, Report};
use crate::rules::Rule;

/// Run the structural checks, appending one diagnostic per violation.
///
/// Returns `true` when at least one violation is **fatal** for deeper
/// analysis — block ids may be out of range or registers unallocated, so
/// the engine must not build a CFG or run dataflow over the function.
pub fn check(f: &Function, out: &mut Report) -> bool {
    let mut fatal = false;
    for e in verify_function_all(f) {
        fatal |= is_fatal(e.kind);
        let rule = match e.kind {
            VerifyErrorKind::NoBlocks => Rule::NoBlocks,
            VerifyErrorKind::DanglingTarget => Rule::DanglingTarget,
            VerifyErrorKind::UnallocatedRegister => Rule::UnallocatedRegister,
            VerifyErrorKind::TypeMismatch => Rule::TypeMismatch,
            VerifyErrorKind::PhiNotPrefix => Rule::PhiNotPrefix,
            VerifyErrorKind::PhiNonPredecessor => Rule::PhiNonPredecessor,
            VerifyErrorKind::BranchCondNotInt => Rule::BranchCondNotInt,
            VerifyErrorKind::ReturnMismatch => Rule::ReturnMismatch,
        };
        let loc = if e.kind == VerifyErrorKind::NoBlocks {
            Location::function(&e.function)
        } else {
            Location::block(&e.function, e.block)
        };
        out.push(rule, loc, e.message);
    }
    fatal
}
