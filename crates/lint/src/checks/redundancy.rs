//! `L040-redundant-expression`: the redundancy auditor.
//!
//! PRE works over *lexical* expressions; GVN encodes value equivalence
//! into the name space so PRE can see it. The auditor measures how much
//! full redundancy survives an optimization pipeline by redoing the
//! analysis halves from scratch:
//!
//! 1. clone the function and build pruned SSA with copy folding,
//! 2. compute AWZ congruence classes ([`epre_passes::gvn::value_classes`]),
//! 3. key every pure computation by `(operator, type, operand classes)` —
//!    commutative operators order-insensitively — so congruent
//!    computations share a **value expression**,
//! 4. solve forward/∩ availability over those value expressions. In SSA a
//!    value, once computed, stays computed (operands are never redefined),
//!    so the kill sets are empty,
//! 5. every computation whose value expression is already available on
//!    block entry — or computed earlier in the same block — is **fully
//!    redundant**: every execution path has already produced the value.
//!
//! Findings are reported against the *original* (non-SSA) instruction:
//! SSA construction keeps the relative order of non-copy instructions
//! within each block, so the i-th non-φ instruction of an SSA block is
//! the i-th non-copy instruction of the source block.

use std::collections::HashMap;

use epre_analysis::{solve, BitSet, Direction, Meet};
use epre_cfg::Cfg;
use epre_ir::{BinOp, BlockId, Const, Function, Inst, Ty, UnOp};
use epre_passes::gvn::value_classes;
use epre_ssa::{build_ssa, SsaOptions};

use crate::diag::{Location, Report};
use crate::rules::Rule;

/// A value expression: an operator applied to congruence classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum VKey {
    Bin(BinOp, Ty, u32, u32),
    Un(UnOp, Ty, u32),
    Konst(Const),
}

fn key_of(inst: &Inst, class: &[u32]) -> Option<VKey> {
    match inst {
        Inst::Bin { op, ty, lhs, rhs, .. } => {
            let (mut a, mut b) = (class[lhs.index()], class[rhs.index()]);
            if op.is_commutative() && b < a {
                std::mem::swap(&mut a, &mut b);
            }
            Some(VKey::Bin(*op, *ty, a, b))
        }
        Inst::Un { op, ty, src, .. } => Some(VKey::Un(*op, *ty, class[src.index()])),
        Inst::LoadI { value, .. } => Some(VKey::Konst(*value)),
        _ => None,
    }
}

/// Audit `f` (non-SSA ILOC; functions already carrying φs are skipped)
/// for fully-redundant pure computations, appending one warning each.
pub fn audit(f: &Function, out: &mut Report) {
    if f.blocks.is_empty() || f.blocks.iter().any(|b| b.phi_count() > 0) {
        return;
    }
    let mut g = f.clone();
    build_ssa(&mut g, SsaOptions { fold_copies: true });
    let class = value_classes(&g);

    let cfg = Cfg::new(&g);
    let reach = cfg.reachable();

    // Number the value expressions of reachable code.
    let mut ids: HashMap<VKey, usize> = HashMap::new();
    for (bid, block) in g.iter_blocks() {
        if !reach[bid.index()] {
            continue;
        }
        for inst in &block.insts {
            if let Some(k) = key_of(inst, &class) {
                let n = ids.len();
                ids.entry(k).or_insert(n);
            }
        }
    }

    // Availability: forward, ∩, no kills (SSA operands never change).
    let n = ids.len();
    let mut gen = vec![BitSet::new(n); cfg.len()];
    let kill = vec![BitSet::new(n); cfg.len()];
    for (bid, block) in g.iter_blocks() {
        if !reach[bid.index()] {
            continue;
        }
        for inst in &block.insts {
            if let Some(k) = key_of(inst, &class) {
                gen[bid.index()].insert(ids[&k]);
            }
        }
    }
    let sol = solve(&cfg, Direction::Forward, Meet::Intersection, &gen, &kill);

    for (bid, block) in g.iter_blocks() {
        if !reach[bid.index()] {
            continue;
        }
        // Map the SSA block back to the source block: ids below the
        // original block count are unchanged; one extra block can only
        // come from entry splitting and holds the original entry's body.
        let orig_bid =
            if bid.index() < f.blocks.len() { bid } else { BlockId::ENTRY };
        let orig: Vec<(usize, &Inst)> = f
            .block(orig_bid)
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| !matches!(i, Inst::Copy { .. }))
            .collect();

        let mut avail = sol.ins[bid.index()].clone();
        let mut nonphi = 0usize;
        for inst in &block.insts {
            if matches!(inst, Inst::Phi { .. }) {
                continue;
            }
            let at = nonphi;
            nonphi += 1;
            let Some(k) = key_of(inst, &class) else { continue };
            let id = ids[&k];
            if avail.contains(id) {
                // Prefer the original instruction text and position.
                let (loc, text) = match orig.get(at) {
                    Some(&(i, oi)) => (Location::inst(&f.name, orig_bid, i), oi.to_string()),
                    None => (Location::block(&f.name, orig_bid), inst.to_string()),
                };
                out.push(
                    Rule::RedundantExpr,
                    loc,
                    format!(
                        "`{text}` is fully redundant: GVN proves its value is already \
                         computed on every path to this point"
                    ),
                );
            } else {
                avail.insert(id);
            }
        }
    }
}
