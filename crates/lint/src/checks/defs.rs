//! `L020-use-before-def`: must-defined reaching-definitions analysis for
//! non-SSA ILOC.
//!
//! A register use is sound only if a definition of that register reaches
//! it along **every** path from the entry; otherwise some execution reads
//! an uninitialized register. This is the forward/∩ gen-kill problem with
//! `gen[b]` = registers defined in `b` (plus the parameters at the entry)
//! and an empty kill set — a definition, once made, is never unmade.
//!
//! Only reachable blocks are walked: unreachable code cannot execute and
//! is reported separately by `L030`.

use epre_analysis::{solve, BitSet, Direction, Meet};
use epre_cfg::Cfg;
use epre_ir::{BlockId, Function};

use crate::diag::{Location, Report};
use crate::rules::Rule;

/// Run the use-before-def check, appending one diagnostic per unsound use.
pub fn check(f: &Function, cfg: &Cfg, out: &mut Report) {
    let nregs = f.reg_count();
    let reach = cfg.reachable();

    let mut gen = vec![BitSet::new(nregs); cfg.len()];
    let kill = vec![BitSet::new(nregs); cfg.len()];
    for &p in &f.params {
        gen[BlockId::ENTRY.index()].insert(p.index());
    }
    for (bid, block) in f.iter_blocks() {
        for inst in &block.insts {
            if let Some(d) = inst.dst() {
                gen[bid.index()].insert(d.index());
            }
        }
    }
    let sol = solve(cfg, Direction::Forward, Meet::Intersection, &gen, &kill);

    for (bid, block) in f.iter_blocks() {
        if !reach[bid.index()] {
            continue;
        }
        // Definitions that reach the top of the block on every path; the
        // entry's boundary fact is ∅, so its parameters are seeded here.
        let mut defined = sol.ins[bid.index()].clone();
        if bid == BlockId::ENTRY {
            for &p in &f.params {
                defined.insert(p.index());
            }
        }
        for (i, inst) in block.insts.iter().enumerate() {
            for u in inst.uses() {
                if !defined.contains(u.index()) {
                    out.push(
                        Rule::UseBeforeDef,
                        Location::inst(&f.name, bid, i),
                        format!("use of {u} in `{inst}` before any definition reaches it"),
                    );
                }
            }
            if let Some(d) = inst.dst() {
                defined.insert(d.index());
            }
        }
        for u in block.term.uses() {
            if !defined.contains(u.index()) {
                out.push(
                    Rule::UseBeforeDef,
                    Location::block(&f.name, bid),
                    format!(
                        "use of {u} in terminator `{}` before any definition reaches it",
                        block.term
                    ),
                );
            }
        }
    }
}
