//! CFG hygiene rules: `L030-unreachable-block` and
//! `L031-unsplit-critical-edge`.

use epre_cfg::Cfg;
use epre_ir::Function;

use crate::diag::{Location, Report};
use crate::rules::Rule;

/// Report every block unreachable from the entry.
pub fn check_unreachable(f: &Function, cfg: &Cfg, out: &mut Report) {
    for (bid, ok) in cfg.reachable().iter().enumerate() {
        if !ok {
            out.push(
                Rule::UnreachableBlock,
                Location::block(&f.name, epre_ir::BlockId(bid as u32)),
                format!("block b{bid} is unreachable from the entry"),
            );
        }
    }
}

/// Report every critical edge (multi-successor source into
/// multi-predecessor target). PRE can only place computations on such an
/// edge after splitting it, so a pipeline that wants edge placements must
/// run the splitter first.
pub fn check_critical_edges(f: &Function, cfg: &Cfg, out: &mut Report) {
    for (from, to) in cfg.edges() {
        if cfg.is_critical(from, to) {
            out.push(
                Rule::CriticalEdge,
                Location::block(&f.name, from),
                format!("edge {from} -> {to} is critical and unsplit"),
            );
        }
    }
}
