//! The analysis rules behind the registry in [`crate::rules`].
//!
//! Each submodule implements one rule family as a function appending
//! diagnostics to a [`crate::diag::Report`]; the engine
//! ([`crate::engine`]) decides which families apply to a given function
//! (SSA vs. non-SSA, structural soundness gating) and in what order.

pub mod dead;
pub mod defs;
pub mod hygiene;
pub mod redundancy;
pub mod ssa;
pub mod structural;
