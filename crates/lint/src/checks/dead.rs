//! `L032-dead-pure-value`: a side-effect-free instruction whose result is
//! never used anywhere in the function — a computation DCE would delete.

use std::collections::HashSet;

use epre_cfg::Cfg;
use epre_ir::{Function, Reg};

use crate::diag::{Location, Report};
use crate::purity::is_removable;
use crate::rules::Rule;

/// Report every removable instruction whose destination register is never
/// used by any instruction or terminator. Uses in unreachable blocks
/// still count as uses (conservative); only reachable definitions are
/// flagged.
pub fn check(f: &Function, cfg: &Cfg, out: &mut Report) {
    let mut used: HashSet<Reg> = HashSet::new();
    for (_, block) in f.iter_blocks() {
        for inst in &block.insts {
            used.extend(inst.uses());
        }
        used.extend(block.term.uses());
    }
    let reach = cfg.reachable();
    for (bid, block) in f.iter_blocks() {
        if !reach[bid.index()] {
            continue;
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if !is_removable(inst) {
                continue;
            }
            if let Some(d) = inst.dst() {
                if !used.contains(&d) {
                    out.push(
                        Rule::DeadPureValue,
                        Location::inst(&f.name, bid, i),
                        format!("result {d} of `{inst}` is never used"),
                    );
                }
            }
        }
    }
}
