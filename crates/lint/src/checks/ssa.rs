//! SSA rule family (`L010`–`L012`): single assignment and dominance of
//! uses, via the collect-all SSA verifier of `epre-ssa`.
//!
//! These rules only apply to functions in SSA form; the engine gates them
//! on the presence of φ-nodes (non-SSA ILOC legitimately redefines
//! registers, and gets the `L020` reaching-definitions check instead).

use epre_ir::Function;
use epre_ssa::{verify_ssa_all, SsaErrorKind};

use crate::diag::{Location, Report};
use crate::rules::Rule;

/// Run the SSA checks, appending one diagnostic per violation.
pub fn check(f: &Function, out: &mut Report) {
    for e in verify_ssa_all(f) {
        let rule = match e.kind {
            SsaErrorKind::MultipleDefinition => Rule::SsaDoubleDef,
            SsaErrorKind::UndefinedUse => Rule::SsaUndefinedUse,
            SsaErrorKind::UseNotDominated => Rule::SsaUseNotDominated,
        };
        let loc = match e.block {
            Some(b) => Location::block(&e.function, b),
            None => Location::function(&e.function),
        };
        out.push(rule, loc, e.message);
    }
}
