//! # epre-lint — a collect-all diagnostics engine for `epre-ir`
//!
//! The paper's methodology treats every optimization pass as a
//! well-behaved filter over ILOC. This crate makes that checkable: a
//! registry of static analysis rules with **stable codes** (see
//! [`rules::Rule`]), each finding carrying a severity and a precise
//! location, accumulated into a [`diag::Report`] that renders as
//! compiler-style text or machine-readable JSON.
//!
//! Rule families:
//!
//! * **structural** (`L001`–`L008`) — the `epre-ir` verifier in
//!   collect-all form: block targets, register allocation, types,
//!   φ placement;
//! * **SSA** (`L010`–`L012`) — single assignment and dominance of uses,
//!   for functions carrying φ-nodes;
//! * **data-flow** (`L020`) — a must-defined reaching-definitions
//!   use-before-def check for plain (non-SSA) ILOC;
//! * **CFG hygiene** (`L030`–`L032`) — unreachable blocks, unsplit
//!   critical edges, dead pure computations (backed by the
//!   [`purity`] classifier);
//! * **quality audit** (`L040`) — the *redundancy auditor*: recomputes
//!   availability over GVN congruence classes and flags fully-redundant
//!   expressions the optimizer left behind.
//!
//! The intended consumers are the `epre lint` CLI and the pipeline's
//! `verify_each` mode in `epre-core`, which lints after every pass and
//! blames the pass that introduced each new violation.
//!
//! ```
//! use epre_ir::parse_module;
//! use epre_lint::{lint_module, LintOptions};
//!
//! let m = parse_module(
//!     "module data 0\n\
//!      function f(r0:i) -> i\n\
//!      block b0:\n  r1 <- add.i r0, r0\n  ret r1\n\
//!      end\n",
//! )
//! .unwrap();
//! let report = lint_module(&m, &LintOptions::default());
//! assert!(report.is_clean());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::all)]

pub mod checks;
pub mod diag;
pub mod engine;
pub mod purity;
pub mod rules;

pub use diag::{Diagnostic, Location, Report, Severity};
pub use engine::{lint_function, lint_module, LintOptions};
pub use purity::{effect_of, is_removable, Effect};
pub use rules::Rule;
