//! The lint engine: decides which rule families apply to a function and
//! runs them in order, accumulating everything into one [`Report`].

use epre_cfg::Cfg;
use epre_ir::{Function, Module};

use crate::checks;
use crate::diag::Report;

/// Which optional rule families to run. The mandatory invariants
/// (structural, SSA / use-before-def) always run.
#[derive(Debug, Clone, Copy)]
pub struct LintOptions {
    /// Run the `L040` redundancy auditor (builds SSA and value numbers a
    /// clone of the function — the most expensive rule).
    pub audit_redundancy: bool,
    /// Run the CFG hygiene rules (`L030` unreachable blocks, `L031`
    /// critical edges).
    pub cfg_hygiene: bool,
    /// Run the `L032` dead-pure-value rule.
    pub dead_values: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions { audit_redundancy: true, cfg_hygiene: true, dead_values: true }
    }
}

impl LintOptions {
    /// Only the invariant rules — what the pipeline's `verify_each` mode
    /// runs between passes, where warnings about intermediate states
    /// (critical edges, not-yet-deleted dead code, remaining redundancy)
    /// are expected rather than suspicious.
    pub fn invariants_only() -> Self {
        LintOptions { audit_redundancy: false, cfg_hygiene: false, dead_values: false }
    }
}

/// Lint one function.
///
/// The structural rules run first; if any **fatal** structural violation
/// is found (missing blocks, dangling block ids, unallocated registers)
/// the deeper rules are skipped, since building a CFG or indexing
/// register tables would be unsound. Otherwise:
///
/// * functions carrying φ-nodes get the SSA rule family,
/// * plain ILOC gets the reaching-definitions use-before-def rule,
/// * the optional families follow per [`LintOptions`] (the redundancy
///   auditor only runs on non-SSA, error-free input; between-pass pipeline
///   states are non-SSA, and SSA-form functions are mid-transformation).
pub fn lint_function(f: &Function, opts: &LintOptions) -> Report {
    let mut report = Report::new();
    let fatal = checks::structural::check(f, &mut report);
    if fatal {
        return report;
    }
    let cfg = Cfg::new(f);
    // Any φ anywhere (not just in prefix position — a misplaced φ must
    // still put the function under the SSA discipline, not the non-SSA
    // reaching-definitions rule, which has no per-edge view of φ inputs).
    let has_phis = f
        .blocks
        .iter()
        .any(|b| b.insts.iter().any(|i| matches!(i, epre_ir::Inst::Phi { .. })));
    if has_phis {
        checks::ssa::check(f, &mut report);
    } else {
        checks::defs::check(f, &cfg, &mut report);
    }
    if opts.cfg_hygiene {
        checks::hygiene::check_unreachable(f, &cfg, &mut report);
        checks::hygiene::check_critical_edges(f, &cfg, &mut report);
    }
    if opts.dead_values {
        checks::dead::check(f, &cfg, &mut report);
    }
    // The auditor rebuilds SSA on a clone, which is only sound on
    // invariant-clean input: a function with (say) a use-before-def has no
    // well-defined SSA form to value-number.
    if opts.audit_redundancy && !has_phis && !report.has_errors() {
        checks::redundancy::audit(f, &mut report);
    }
    report
}

/// Lint every function of a module into one combined report.
pub fn lint_module(m: &Module, opts: &LintOptions) -> Report {
    let mut report = Report::new();
    for f in &m.functions {
        report.merge(lint_function(f, opts));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;
    use epre_ir::{BinOp, FunctionBuilder, Ty};

    #[test]
    fn clean_function_is_clean() {
        let mut b = FunctionBuilder::new("ok", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.bin(BinOp::Add, Ty::Int, x, x);
        b.ret(Some(y));
        let r = lint_function(&b.finish(), &LintOptions::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn straight_line_redundancy_is_flagged() {
        // y = x + x; z = x + x; return y * z — the second add is fully
        // redundant and only the auditor can tell.
        let mut b = FunctionBuilder::new("red", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.bin(BinOp::Add, Ty::Int, x, x);
        let z = b.bin(BinOp::Add, Ty::Int, x, x);
        let m = b.bin(BinOp::Mul, Ty::Int, y, z);
        b.ret(Some(m));
        let f = b.finish();
        let r = lint_function(&f, &LintOptions::default());
        assert!(!r.has_errors(), "{r}");
        let red: Vec<_> =
            r.diagnostics.iter().filter(|d| d.rule == Rule::RedundantExpr).collect();
        assert_eq!(red.len(), 1, "{r}");
        assert_eq!(red[0].location.block, Some(epre_ir::BlockId::ENTRY));
        assert_eq!(red[0].location.inst, Some(1));
    }

    #[test]
    fn commutated_cross_block_redundancy_is_flagged() {
        // Both arms compute x+y (one as y+x); the join recomputes it.
        // Lexical availability sees nothing wrong with the two arms, but
        // every path to the join has produced the value.
        let mut b = FunctionBuilder::new("cross", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let v = b.new_reg(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(p, t, e);
        b.switch_to(t);
        let a1 = b.bin(BinOp::Add, Ty::Int, x, y);
        b.copy_to(v, a1);
        b.jump(j);
        b.switch_to(e);
        let a2 = b.bin(BinOp::Add, Ty::Int, y, x);
        b.copy_to(v, a2);
        b.jump(j);
        b.switch_to(j);
        let a3 = b.bin(BinOp::Add, Ty::Int, x, y);
        let s = b.bin(BinOp::Sub, Ty::Int, a3, v);
        b.ret(Some(s));
        let f = b.finish();
        let r = lint_function(&f, &LintOptions::default());
        assert!(!r.has_errors(), "{r}");
        let red: Vec<_> =
            r.diagnostics.iter().filter(|d| d.rule == Rule::RedundantExpr).collect();
        assert_eq!(red.len(), 1, "{r}");
        assert_eq!(red[0].location.block, Some(j));
        assert_eq!(red[0].location.inst, Some(0));
    }

    #[test]
    fn partial_redundancy_is_not_flagged() {
        // Only one arm computes x+y: at the join the value is partially,
        // not fully, redundant — the auditor must stay quiet.
        let mut b = FunctionBuilder::new("part", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let v = b.new_reg(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(p, t, e);
        b.switch_to(t);
        let a1 = b.bin(BinOp::Add, Ty::Int, x, y);
        b.copy_to(v, a1);
        b.jump(j);
        b.switch_to(e);
        let a2 = b.bin(BinOp::Mul, Ty::Int, x, y);
        b.copy_to(v, a2);
        b.jump(j);
        b.switch_to(j);
        let a3 = b.bin(BinOp::Add, Ty::Int, x, y);
        let s = b.bin(BinOp::Sub, Ty::Int, a3, v);
        b.ret(Some(s));
        let f = b.finish();
        let r = lint_function(&f, &LintOptions::default());
        let red =
            r.diagnostics.iter().filter(|d| d.rule == Rule::RedundantExpr).count();
        assert_eq!(red, 0, "{r}");
    }

    #[test]
    fn module_lint_merges_functions() {
        let mut m = epre_ir::Module::new();
        let mut b = FunctionBuilder::new("a", None);
        b.ret(None);
        m.functions.push(b.finish());
        let mut b = FunctionBuilder::new("b", None);
        b.ret(None);
        m.functions.push(b.finish());
        assert!(lint_module(&m, &LintOptions::default()).is_clean());
    }
}
