//! Side-effect / purity classification of instructions.
//!
//! Several consumers need to know what an instruction may observe or
//! change: the redundancy auditor only reasons about [`Effect::Pure`]
//! computations, the dead-value rule flags unused results of
//! [removable](is_removable) instructions, and future schedulers can use
//! the classification to decide what may move across what.

use epre_ir::Inst;

/// What an instruction may observe or change beyond its register result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effect {
    /// A function of its register operands alone: arithmetic, constants,
    /// copies, φ-nodes. Safe to re-order, duplicate, or delete (when the
    /// result is dead).
    Pure,
    /// Reads memory (`load`): the result depends on the store; deletable
    /// when dead, but not a value-numbering candidate across stores.
    ReadsMemory,
    /// Writes memory (`store`): observable; never deletable.
    WritesMemory,
    /// A call: may read and write memory and perform I/O; opaque to every
    /// analysis here.
    Opaque,
}

/// Classify one instruction.
pub fn effect_of(inst: &Inst) -> Effect {
    match inst {
        Inst::Bin { .. } | Inst::Un { .. } | Inst::LoadI { .. } | Inst::Copy { .. }
        | Inst::Phi { .. } => Effect::Pure,
        Inst::Load { .. } => Effect::ReadsMemory,
        Inst::Store { .. } => Effect::WritesMemory,
        Inst::Call { .. } => Effect::Opaque,
    }
}

/// Whether the instruction can be deleted when its result is unused: true
/// for [`Effect::Pure`] and [`Effect::ReadsMemory`] (a dead load observes
/// nothing), false for writes and calls.
pub fn is_removable(inst: &Inst) -> bool {
    matches!(effect_of(inst), Effect::Pure | Effect::ReadsMemory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, Reg, Ty};

    #[test]
    fn classification_matches_ir_side_effect_flag() {
        // The IR's own `has_side_effects` must be exactly the
        // non-removable set.
        let samples = vec![
            Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: Reg(0), lhs: Reg(1), rhs: Reg(2) },
            Inst::LoadI { dst: Reg(0), value: Const::Int(1) },
            Inst::Copy { dst: Reg(0), src: Reg(1) },
            Inst::Load { ty: Ty::Int, dst: Reg(0), addr: Reg(1) },
            Inst::Store { ty: Ty::Int, addr: Reg(0), value: Reg(1) },
            Inst::Call { dst: None, callee: "t".into(), args: vec![] },
        ];
        for inst in samples {
            assert_eq!(inst.has_side_effects(), !is_removable(&inst), "{inst}");
        }
    }

    #[test]
    fn loads_read_but_do_not_write() {
        let load = Inst::Load { ty: Ty::Int, dst: Reg(0), addr: Reg(1) };
        assert_eq!(effect_of(&load), Effect::ReadsMemory);
        assert!(is_removable(&load));
    }
}
