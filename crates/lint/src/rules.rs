//! The rule registry: every lint rule, its stable code, and its invariant.
//!
//! Codes are stable across releases and grouped by family:
//!
//! * `L00x` — structural IR invariants (the collect-all form of
//!   `epre_ir::verify_function_all`),
//! * `L01x` — SSA invariants (`epre_ssa::verify_ssa_all`, only checked when
//!   the function carries φ-nodes),
//! * `L02x` — data-flow invariants on non-SSA ILOC,
//! * `L03x` — CFG hygiene and dead-code findings,
//! * `L04x` — optimization-quality audits.

use crate::diag::Severity;

/// Every rule the lint engine can fire, with stable metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `L001`: a function must contain at least one basic block.
    NoBlocks,
    /// `L002`: every terminator and φ-input block id names an existing
    /// block.
    DanglingTarget,
    /// `L003`: every register named anywhere was allocated in the
    /// function's register type table.
    UnallocatedRegister,
    /// `L004`: operand and result types agree with each instruction's
    /// declared type.
    TypeMismatch,
    /// `L005`: φ-nodes appear only as a prefix of their block.
    PhiNotPrefix,
    /// `L006`: every φ-input block is an actual CFG predecessor.
    PhiNonPredecessor,
    /// `L007`: a `cbr` condition register has `Int` type.
    BranchCondNotInt,
    /// `L008`: a `ret` agrees with the function signature.
    ReturnMismatch,
    /// `L010`: in SSA form, every register has exactly one definition.
    SsaDoubleDef,
    /// `L011`: in SSA form, every use names a defined register.
    SsaUndefinedUse,
    /// `L012`: in SSA form, every use is dominated by its definition.
    SsaUseNotDominated,
    /// `L020`: on non-SSA ILOC, a definition of every used register
    /// reaches the use along **every** path from the entry
    /// (must-defined reaching-definitions analysis).
    UseBeforeDef,
    /// `L030`: every block is reachable from the entry.
    UnreachableBlock,
    /// `L031`: no CFG edge is critical (multi-successor source into
    /// multi-predecessor target); PRE can only place computations on such
    /// an edge after splitting it.
    CriticalEdge,
    /// `L032`: the result of a side-effect-free instruction is used
    /// somewhere (otherwise the computation is dead and DCE missed it).
    DeadPureValue,
    /// `L040`: no expression recomputes a value that global value
    /// numbering proves available along every path to it — a fully
    /// redundant computation the optimizer left behind.
    RedundantExpr,
}

impl Rule {
    /// All rules, in code order — the registry the engine and the CLI
    /// `rules` listing iterate over.
    pub const ALL: [Rule; 16] = [
        Rule::NoBlocks,
        Rule::DanglingTarget,
        Rule::UnallocatedRegister,
        Rule::TypeMismatch,
        Rule::PhiNotPrefix,
        Rule::PhiNonPredecessor,
        Rule::BranchCondNotInt,
        Rule::ReturnMismatch,
        Rule::SsaDoubleDef,
        Rule::SsaUndefinedUse,
        Rule::SsaUseNotDominated,
        Rule::UseBeforeDef,
        Rule::UnreachableBlock,
        Rule::CriticalEdge,
        Rule::DeadPureValue,
        Rule::RedundantExpr,
    ];

    /// The stable short code, e.g. `"L020"`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoBlocks => "L001",
            Rule::DanglingTarget => "L002",
            Rule::UnallocatedRegister => "L003",
            Rule::TypeMismatch => "L004",
            Rule::PhiNotPrefix => "L005",
            Rule::PhiNonPredecessor => "L006",
            Rule::BranchCondNotInt => "L007",
            Rule::ReturnMismatch => "L008",
            Rule::SsaDoubleDef => "L010",
            Rule::SsaUndefinedUse => "L011",
            Rule::SsaUseNotDominated => "L012",
            Rule::UseBeforeDef => "L020",
            Rule::UnreachableBlock => "L030",
            Rule::CriticalEdge => "L031",
            Rule::DeadPureValue => "L032",
            Rule::RedundantExpr => "L040",
        }
    }

    /// The stable kebab-case name, e.g. `"use-before-def"`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NoBlocks => "no-blocks",
            Rule::DanglingTarget => "dangling-branch-target",
            Rule::UnallocatedRegister => "unallocated-register",
            Rule::TypeMismatch => "type-mismatch",
            Rule::PhiNotPrefix => "phi-not-prefix",
            Rule::PhiNonPredecessor => "phi-non-predecessor",
            Rule::BranchCondNotInt => "branch-condition-not-int",
            Rule::ReturnMismatch => "return-mismatch",
            Rule::SsaDoubleDef => "ssa-double-def",
            Rule::SsaUndefinedUse => "ssa-undefined-use",
            Rule::SsaUseNotDominated => "ssa-use-not-dominated",
            Rule::UseBeforeDef => "use-before-def",
            Rule::UnreachableBlock => "unreachable-block",
            Rule::CriticalEdge => "unsplit-critical-edge",
            Rule::DeadPureValue => "dead-pure-value",
            Rule::RedundantExpr => "redundant-expression",
        }
    }

    /// The severity findings of this rule carry.
    pub fn severity(self) -> Severity {
        match self {
            Rule::NoBlocks
            | Rule::DanglingTarget
            | Rule::UnallocatedRegister
            | Rule::TypeMismatch
            | Rule::PhiNotPrefix
            | Rule::PhiNonPredecessor
            | Rule::BranchCondNotInt
            | Rule::ReturnMismatch
            | Rule::SsaDoubleDef
            | Rule::SsaUndefinedUse
            | Rule::SsaUseNotDominated
            | Rule::UseBeforeDef => Severity::Error,
            Rule::UnreachableBlock | Rule::RedundantExpr => Severity::Warning,
            Rule::CriticalEdge | Rule::DeadPureValue => Severity::Info,
        }
    }

    /// One-sentence statement of the invariant the rule enforces (used by
    /// the CLI rule listing and the docs).
    pub fn invariant(self) -> &'static str {
        match self {
            Rule::NoBlocks => "a function contains at least one basic block",
            Rule::DanglingTarget => {
                "every terminator target and φ-input block names an existing block"
            }
            Rule::UnallocatedRegister => {
                "every register named anywhere is allocated in the register type table"
            }
            Rule::TypeMismatch => {
                "operand and result types agree with each instruction's declared type"
            }
            Rule::PhiNotPrefix => "φ-nodes appear only as a prefix of their block",
            Rule::PhiNonPredecessor => "every φ-input block is a CFG predecessor",
            Rule::BranchCondNotInt => "a cbr condition register has Int type",
            Rule::ReturnMismatch => {
                "a ret agrees with the function signature (type; no value from a subroutine)"
            }
            Rule::SsaDoubleDef => "in SSA form, every register has exactly one definition",
            Rule::SsaUndefinedUse => "in SSA form, every use names a defined register",
            Rule::SsaUseNotDominated => "in SSA form, every use is dominated by its definition",
            Rule::UseBeforeDef => {
                "a definition of every used register reaches the use on every path from the entry"
            }
            Rule::UnreachableBlock => "every block is reachable from the entry",
            Rule::CriticalEdge => "no CFG edge is critical (PRE insertions would need a split)",
            Rule::DeadPureValue => "the result of every side-effect-free instruction is used",
            Rule::RedundantExpr => {
                "no expression recomputes a value available (by GVN congruence) on every path"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_ordered() {
        let codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), Rule::ALL.len(), "duplicate rule code");
        assert_eq!(codes, sorted, "registry not in code order");
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<&str> = Rule::ALL.iter().map(|r| r.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), Rule::ALL.len(), "duplicate rule slug");
    }
}
