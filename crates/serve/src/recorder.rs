//! The flight recorder: a bounded in-memory ring of per-request
//! summaries and daemon events, dumped as deterministic JSONL.
//!
//! The batch telemetry log answers "what happened" when someone thought
//! to enable it; the flight recorder answers "what was the daemon doing
//! *just now*" — after a SIGQUIT checkpoint, around a slow request, or
//! post-mortem after a kill. It is always on (the ring is a few hundred
//! fixed-size entries), and three paths read it:
//!
//! - **SIGQUIT**: the CLI dumps the ring to `--flight-recorder PATH`
//!   (atomic tmp+rename) and keeps serving. Repeatable — a checkpoint,
//!   not a shutdown.
//! - **Slow requests**: any request over `--slow-ms` appends its own
//!   summary line (full span breakdown) to the slow log *before* its
//!   terminal frame is written, so every answer a client holds is
//!   already accounted for on disk.
//! - **Drain**: the graceful-shutdown path writes a final dump, so even
//!   a clean exit leaves the last-moments record.
//!
//! The dump is deterministic in *schema and accounting*: fixed key
//! order, dense ring sequence numbers, in-flight entries sorted by
//! admission order. Durations are wall-clock (that is the point — this
//! is the nondeterministic-world record; the deterministic-replay story
//! lives in the telemetry traces).

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::json::{obj, Json};

/// One completed (or refused) request, as the recorder remembers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSummary {
    /// The end-to-end trace id (client-minted or server-derived).
    pub request: String,
    /// Client identity.
    pub client: String,
    /// Traffic class: `cold`/`warm`/`poison`/`oversized`/`shed`.
    pub class: String,
    /// Terminal status: `clean`, `degraded`, or the error code label.
    pub status: String,
    /// Functions replayed from cache.
    pub reused: u64,
    /// Functions freshly optimized.
    pub fresh: u64,
    /// Contained pass faults.
    pub faults: u64,
    /// Wall-clock service time, microseconds.
    pub duration_us: u64,
    /// Per-stage wall-clock breakdown (admission → cache-probe →
    /// governed-run → oracle → respond), microseconds. Empty for
    /// requests refused before the pipeline.
    pub spans: Vec<(String, u64)>,
}

impl RequestSummary {
    fn fields(&self) -> Vec<(&str, Json)> {
        vec![
            ("request", Json::Str(self.request.clone())),
            ("client", Json::Str(self.client.clone())),
            ("class", Json::Str(self.class.clone())),
            ("status", Json::Str(self.status.clone())),
            ("reused", Json::U64(self.reused)),
            ("fresh", Json::U64(self.fresh)),
            ("faults", Json::U64(self.faults)),
            ("duration_us", Json::U64(self.duration_us)),
            (
                "spans",
                Json::Obj(
                    self.spans.iter().map(|(k, v)| (k.clone(), Json::U64(*v))).collect(),
                ),
            ),
        ]
    }

    /// The slow-request log line for this summary: the same record as a
    /// ring entry, flagged `"slow":true` instead of sequence-numbered.
    pub fn slow_line(&self) -> String {
        let mut fields = vec![("slow", Json::Bool(true))];
        fields.extend(self.fields());
        obj(fields).encode()
    }
}

#[derive(Debug)]
enum RingEntry {
    Request(RequestSummary),
    Note { kind: String, detail: String },
}

#[derive(Debug, Default)]
struct RecorderState {
    seq: u64,
    dropped: u64,
    ring: VecDeque<(u64, RingEntry)>,
    next_token: u64,
    in_flight: Vec<(u64, String, String)>, // (token, request id, client)
}

/// The bounded ring. All methods take one short mutex hold; the
/// recorder is always on and must never become the hot path's lock.
#[derive(Debug)]
pub struct FlightRecorder {
    state: Mutex<RecorderState>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder remembering the most recent `capacity` entries.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder { state: Mutex::new(RecorderState::default()), capacity: capacity.max(1) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.state.lock().expect("flight recorder poisoned")
    }

    fn push(state: &mut RecorderState, capacity: usize, entry: RingEntry) {
        if state.ring.len() == capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        let seq = state.seq;
        state.seq += 1;
        state.ring.push_back((seq, entry));
    }

    /// Mark a request in flight. The token identifies it until
    /// [`FlightRecorder::end`]; tokens are admission-ordered, so a dump
    /// lists in-flight requests oldest-first.
    pub fn begin(&self, request: &str, client: &str) -> u64 {
        let mut s = self.lock();
        let token = s.next_token;
        s.next_token += 1;
        s.in_flight.push((token, request.to_string(), client.to_string()));
        token
    }

    /// Retire an in-flight request into the ring.
    pub fn end(&self, token: u64, summary: RequestSummary) {
        let mut s = self.lock();
        s.in_flight.retain(|(t, _, _)| *t != token);
        Self::push(&mut s, self.capacity, RingEntry::Request(summary));
    }

    /// Record a non-request daemon event (shed, goaway, drain, …).
    pub fn note(&self, kind: &str, detail: &str) {
        let mut s = self.lock();
        Self::push(&mut s, self.capacity, RingEntry::Note {
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Requests currently in flight, admission-ordered.
    pub fn in_flight(&self) -> Vec<(String, String)> {
        self.lock().in_flight.iter().map(|(_, r, c)| (r.clone(), c.clone())).collect()
    }

    /// Render the recorder as JSONL: a header line, one line per
    /// in-flight request (admission-ordered), then the ring in sequence
    /// order. Every line is one JSON object with a fixed key order.
    pub fn dump(&self) -> String {
        let s = self.lock();
        let mut out = String::new();
        out.push_str(
            &obj(vec![
                ("flight_recorder", Json::Bool(true)),
                ("capacity", Json::U64(self.capacity as u64)),
                ("dropped", Json::U64(s.dropped)),
                ("in_flight", Json::U64(s.in_flight.len() as u64)),
                ("recorded", Json::U64(s.ring.len() as u64)),
            ])
            .encode(),
        );
        out.push('\n');
        for (_, request, client) in &s.in_flight {
            out.push_str(
                &obj(vec![
                    ("in_flight", Json::Bool(true)),
                    ("request", Json::Str(request.clone())),
                    ("client", Json::Str(client.clone())),
                ])
                .encode(),
            );
            out.push('\n');
        }
        for (seq, entry) in &s.ring {
            let mut fields = vec![("seq", Json::U64(*seq))];
            match entry {
                RingEntry::Request(summary) => {
                    fields.push(("kind", Json::Str("request".into())));
                    fields.extend(summary.fields());
                }
                RingEntry::Note { kind, detail } => {
                    fields.push(("kind", Json::Str(kind.clone())));
                    fields.push(("detail", Json::Str(detail.clone())));
                }
            }
            out.push_str(&obj(fields).encode());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn summary(id: &str, class: &str) -> RequestSummary {
        RequestSummary {
            request: id.to_string(),
            client: "t".into(),
            class: class.into(),
            status: "clean".into(),
            reused: 1,
            fresh: 2,
            faults: 0,
            duration_us: 1234,
            spans: vec![("admission".into(), 5), ("governed-run".into(), 1200)],
        }
    }

    #[test]
    fn every_dump_line_is_json_with_the_documented_shape() {
        let rec = FlightRecorder::new(8);
        let tok = rec.begin("aaaa", "alice");
        rec.end(tok, summary("aaaa", "cold"));
        let _hang = rec.begin("bbbb", "bob");
        rec.note("shed", "overloaded");
        let dump = rec.dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4, "header + 1 in-flight + 2 ring:\n{dump}");
        for line in &lines {
            parse(line).unwrap_or_else(|e| panic!("{line} unparseable: {e}"));
        }
        assert!(lines[0].starts_with("{\"flight_recorder\":true,\"capacity\":8,"), "{dump}");
        assert!(lines[1].contains("\"in_flight\":true") && lines[1].contains("\"bbbb\""));
        assert!(lines[2].contains("\"seq\":0") && lines[2].contains("\"kind\":\"request\""));
        assert!(lines[2].contains("\"spans\":{\"admission\":5,\"governed-run\":1200}"), "{dump}");
        assert!(lines[3].contains("\"kind\":\"shed\"") && lines[3].contains("overloaded"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops_with_dense_seq() {
        let rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.note("tick", &i.to_string());
        }
        let dump = rec.dump();
        assert!(dump.starts_with("{\"flight_recorder\":true,\"capacity\":3,\"dropped\":7,"));
        // The survivors are the three most recent, with their original
        // (dense, never reused) sequence numbers.
        assert!(dump.contains("\"seq\":7") && dump.contains("\"seq\":9"), "{dump}");
        assert!(!dump.contains("\"seq\":6"), "{dump}");
    }

    #[test]
    fn in_flight_accounting_is_exact() {
        let rec = FlightRecorder::new(4);
        let a = rec.begin("a", "c1");
        let b = rec.begin("b", "c2");
        assert_eq!(rec.in_flight().len(), 2);
        rec.end(a, summary("a", "warm"));
        assert_eq!(rec.in_flight(), vec![("b".to_string(), "c2".to_string())]);
        rec.end(b, summary("b", "cold"));
        assert!(rec.in_flight().is_empty());
    }

    #[test]
    fn slow_line_carries_the_span_breakdown() {
        let line = summary("dead", "cold").slow_line();
        parse(&line).unwrap();
        assert!(line.starts_with("{\"slow\":true,\"request\":\"dead\""), "{line}");
        assert!(line.contains("\"duration_us\":1234"), "{line}");
        assert!(line.contains("\"spans\":{"), "{line}");
    }
}
