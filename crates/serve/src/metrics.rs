//! The daemon's live-metrics wiring: one [`MetricsRegistry`] owned by
//! the core, pre-registered handles for every hot-path signal, and the
//! per-pass timing decorator the governed pipeline runs under.
//!
//! Two kinds of values meet in the `epre metrics` render:
//!
//! - **Registry-held** series updated live on the hot path: per-class
//!   request latency histograms, queue-depth / in-flight / worker
//!   gauges, saturation and slow-request counters, per-pass cumulative
//!   pipeline time.
//! - **Mirrored** counters pulled from `stats_snapshot()` at render
//!   time. They are *not* double-counted into the registry — the render
//!   reads the same atomics `submit --stats` reads, which is what makes
//!   the two views reconcile exactly, always.
//!
//! Latency histograms use the fixed microsecond ladder from
//! `epre_telemetry::metrics`, so scrapes from different daemons (or a
//! restart) merge deterministically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use epre::{Budget, BudgetExceeded};
use epre_analysis::{AnalysisCache, PreservedAnalyses};
use epre_ir::Function;
use epre_passes::Pass;
use epre_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, PassCounters, Snapshot};

/// Request classes the latency histograms are keyed by. The first four
/// mirror the loadgen traffic mix; `shed` covers typed refusals
/// (deadline, quarantine, overload) that are neither bad input nor
/// served work.
pub const REQUEST_CLASSES: [&str; 5] = ["cold", "warm", "poison", "oversized", "shed"];

/// Pre-registered handles for every signal the serve hot path updates.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: MetricsRegistry,
    latency: Vec<(&'static str, Arc<Histogram>)>,
    /// Connections admitted to the queue and not yet picked up.
    pub queue_depth: Arc<Gauge>,
    /// Requests currently inside the engine (decoded, not yet answered).
    pub in_flight: Arc<Gauge>,
    /// Workers currently pinned by a session.
    pub workers_busy: Arc<Gauge>,
    /// Configured worker count (constant; exported so scrape tooling can
    /// alert on `workers_busy == workers_total`).
    pub workers_total: Arc<Gauge>,
    /// Times the acceptor saw every worker busy with the admission queue
    /// non-empty — each one is a session waiting on worker churn.
    pub workers_saturated: Arc<Counter>,
    /// Requests that exceeded the `--slow-ms` threshold.
    pub slow_requests: Arc<Counter>,
    saturation_warned: AtomicBool,
}

impl ServeMetrics {
    /// Registry + handles for a daemon configured with `workers` workers.
    pub fn new(workers: usize) -> ServeMetrics {
        let registry = MetricsRegistry::new();
        let latency = REQUEST_CLASSES
            .iter()
            .map(|class| {
                (
                    *class,
                    registry.histogram_labeled(
                        "epre_request_latency_us",
                        Some(("class", class)),
                        "request service time by traffic class, microseconds",
                    ),
                )
            })
            .collect();
        let m = ServeMetrics {
            latency,
            queue_depth: registry
                .gauge("epre_queue_depth", "admitted connections waiting for a worker"),
            in_flight: registry.gauge("epre_in_flight_requests", "requests inside the engine"),
            workers_busy: registry.gauge("epre_workers_busy", "workers pinned by a session"),
            workers_total: registry.gauge("epre_workers_total", "configured worker count"),
            workers_saturated: registry.counter(
                "epre_workers_saturated_total",
                "admissions that found every worker busy and the queue non-empty",
            ),
            slow_requests: registry
                .counter("epre_slow_requests_total", "requests over the --slow-ms threshold"),
            saturation_warned: AtomicBool::new(false),
            registry,
        };
        m.workers_total.set(workers as u64);
        m
    }

    /// Record one request's service time under its traffic class.
    /// Unknown classes are dropped rather than invented: the class set
    /// is part of the exposition schema.
    pub fn observe_latency(&self, class: &str, micros: u64) {
        if let Some((_, h)) = self.latency.iter().find(|(c, _)| *c == class) {
            h.observe(micros);
        }
    }

    /// Acceptor-side saturation check: call after enqueueing a
    /// connection. If every worker is pinned and the queue is non-empty,
    /// count it, and warn on stderr exactly once per process — the
    /// sizing rule is `--workers` above the expected number of
    /// concurrent long-lived clients.
    pub fn note_admission(&self) {
        self.queue_depth.inc();
        if self.workers_busy.value() >= self.workers_total.value() && self.queue_depth.value() > 0
        {
            self.workers_saturated.inc();
            if !self.saturation_warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "epre serve: all {} worker(s) are pinned by live sessions and new \
                     connections are queueing; raise --workers above the expected number of \
                     concurrent long-lived clients (see README 'Serving')",
                    self.workers_total.value()
                );
            }
        }
    }

    /// Wrap a pipeline's passes in the per-pass timing decorator, so
    /// `epre_pass_time_us_total{pass=...}` accumulates live pipeline
    /// time across every request the daemon serves.
    pub fn instrument(&self, passes: Vec<Box<dyn Pass>>) -> Vec<Box<dyn Pass>> {
        passes
            .into_iter()
            .map(|inner| {
                let name = inner.name();
                Box::new(TimedPass {
                    time_us: self.registry.counter_labeled(
                        "epre_pass_time_us_total",
                        Some(("pass", name)),
                        "cumulative pipeline time by pass, microseconds",
                    ),
                    runs: self.registry.counter_labeled(
                        "epre_pass_runs_total",
                        Some(("pass", name)),
                        "pipeline invocations by pass",
                    ),
                    inner,
                }) as Box<dyn Pass>
            })
            .collect()
    }

    /// Dump the registry for rendering (the core then mirrors its stats
    /// counters in before encoding).
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

/// A transparent timing shim around a pipeline pass: same name, same
/// preservation contract, same results — it only charges the wall time
/// of each invocation to the pass's cumulative counter. The governed
/// driver and circuit breakers see the wrapped pass's own name, so
/// fault attribution and quarantine are unchanged.
struct TimedPass {
    inner: Box<dyn Pass>,
    time_us: Arc<Counter>,
    runs: Arc<Counter>,
}

impl TimedPass {
    fn charge<T>(&self, work: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = work();
        self.time_us.add(t0.elapsed().as_micros() as u64);
        self.runs.inc();
        out
    }
}

impl Pass for TimedPass {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run(&self, f: &mut Function) -> bool {
        self.charge(|| self.inner.run(f))
    }

    fn preserves(&self) -> PreservedAnalyses {
        self.inner.preserves()
    }

    fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
        self.charge(|| self.inner.run_cached(f, cache))
    }

    fn run_budgeted(
        &self,
        f: &mut Function,
        cache: &mut AnalysisCache,
        budget: &Budget,
    ) -> Result<bool, BudgetExceeded> {
        self.charge(|| self.inner.run_budgeted(f, cache, budget))
    }

    fn run_instrumented(
        &self,
        f: &mut Function,
        cache: &mut AnalysisCache,
        budget: &Budget,
        counters: &mut PassCounters,
    ) -> Result<bool, BudgetExceeded> {
        self.charge(|| self.inner.run_instrumented(f, cache, budget, counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre::{OptLevel, Optimizer};
    use epre_frontend::{compile, NamingMode};

    const SRC: &str = "function f(a, b)\n\
                       integer a, b, t\n\
                       begin\n\
                       t = a * b + a\n\
                       return t + a * b\nend\n";

    #[test]
    fn timed_passes_change_nothing_but_accumulate_time() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let metrics = ServeMetrics::new(2);
        let plain = {
            let mut f = m.functions[0].clone();
            for p in Optimizer::new(OptLevel::Distribution).passes() {
                p.run(&mut f);
            }
            format!("{f}")
        };
        let timed = {
            let mut f = m.functions[0].clone();
            for p in metrics.instrument(Optimizer::new(OptLevel::Distribution).passes()) {
                p.run(&mut f);
            }
            format!("{f}")
        };
        assert_eq!(plain, timed, "timing shim must be transparent");
        let text = metrics.snapshot().to_text();
        assert!(text.contains("epre_pass_runs_total{pass=\"pre\"} 1"), "{text}");
        assert!(text.contains("epre_pass_time_us_total{pass=\"dce\"}"), "{text}");
    }

    #[test]
    fn latency_classes_are_pre_registered_and_closed() {
        let metrics = ServeMetrics::new(1);
        metrics.observe_latency("cold", 100);
        metrics.observe_latency("nonsense", 5); // dropped, not invented
        let text = metrics.snapshot().to_text();
        for class in REQUEST_CLASSES {
            assert!(
                text.contains(&format!("epre_request_latency_us_count{{class=\"{class}\"}}")),
                "{class} histogram missing:\n{text}"
            );
        }
        assert!(!text.contains("nonsense"), "{text}");
        assert!(text.contains("epre_request_latency_us_count{class=\"cold\"} 1"), "{text}");
    }

    #[test]
    fn saturation_counts_when_all_workers_busy_and_queue_nonempty() {
        let metrics = ServeMetrics::new(2);
        metrics.workers_busy.inc();
        metrics.note_admission(); // one worker free: not saturated
        assert_eq!(metrics.workers_saturated.value(), 0);
        metrics.workers_busy.inc();
        metrics.note_admission(); // both pinned, queue non-empty
        assert_eq!(metrics.workers_saturated.value(), 1);
    }
}
