//! Telemetry adapters: serve outcomes as structured trace events.
//!
//! Mirrors `epre_harness::events` — the daemon aggregates each request
//! into a typed accounting struct, and these adapters render it as
//! [`Event`]s for the server's `--telemetry` JSON Lines log. Because the
//! events are derived from deterministic per-request accounting, a given
//! request sequence always produces the same log (modulo the `seq`
//! numbering, which is per-batch in an append-only log).

use epre_telemetry::{Event, Value};

use crate::cache::CacheRecovery;

/// Per-request accounting rendered into one `request` event.
#[derive(Debug, Clone, Default)]
pub struct RequestAccounting {
    /// The end-to-end trace id echoed in the response frames.
    pub request: String,
    /// The client that sent the request.
    pub client: String,
    /// `"clean"` or `"degraded"`.
    pub status: String,
    /// Functions replayed from the result cache.
    pub reused: u64,
    /// Functions freshly optimized.
    pub fresh: u64,
    /// Contained pass faults.
    pub faults: u64,
    /// Functions rolled back to their input form.
    pub rollbacks: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
}

/// One completed request as a `request` event.
pub fn request_event(acc: &RequestAccounting) -> Event {
    Event::instant("request", "", "serve")
        .with("request", Value::Str(acc.request.clone()))
        .with("client", Value::Str(acc.client.clone()))
        .with("status", Value::Str(acc.status.clone()))
        .with("reused", Value::U64(acc.reused))
        .with("fresh", Value::U64(acc.fresh))
        .with("faults", Value::U64(acc.faults))
        .with("rollbacks", Value::U64(acc.rollbacks))
        .with("cache_hits", Value::U64(acc.cache_hits))
        .with("cache_misses", Value::U64(acc.cache_misses))
}

/// A shed request (overload, expired deadline, client quarantine,
/// or unparsable input) as a `shed` event — the typed alternative to a
/// hang.
pub fn shed_event(code: &str, client: &str) -> Event {
    Event::instant("shed", "", "serve")
        .with("code", Value::Str(code.to_string()))
        .with("client", Value::Str(client.to_string()))
}

/// Cache recovery at startup as a `recover` event.
pub fn recover_event(rec: &CacheRecovery) -> Event {
    Event::instant("recover", "", "serve")
        .with("recovered", Value::U64(rec.recovered as u64))
        .with("resumed_torn", Value::Bool(rec.resumed_torn))
        .with("corrupt_dropped", Value::U64(rec.corrupt_dropped as u64))
        .with("discarded_incompatible", Value::Bool(rec.discarded_incompatible))
}

/// A keep-alive session ended by the server as a `goaway` event.
pub fn goaway_event(reason: &str) -> Event {
    Event::instant("goaway", "", "serve").with("reason", Value::Str(reason.to_string()))
}

/// The final ledger of a graceful drain, rendered into one `drain` event.
#[derive(Debug, Clone, Default)]
pub struct DrainAccounting {
    /// In-flight sessions abandoned at the drain deadline.
    pub abandoned: u64,
    /// Keep-alive sessions served over the process lifetime.
    pub sessions: u64,
    /// Cache entries resident at drain.
    pub cache_entries: u64,
    /// Cache journal file size at drain.
    pub cache_file_bytes: u64,
    /// Entries evicted under the byte cap over the process lifetime.
    pub cache_evictions: u64,
    /// Online + drain compactions over the process lifetime.
    pub cache_compactions: u64,
}

/// Graceful drain completing as a `drain` event.
pub fn drain_event(acc: &DrainAccounting) -> Event {
    Event::instant("drain", "", "serve")
        .with("abandoned", Value::U64(acc.abandoned))
        .with("sessions", Value::U64(acc.sessions))
        .with("cache_entries", Value::U64(acc.cache_entries))
        .with("cache_file_bytes", Value::U64(acc.cache_file_bytes))
        .with("cache_evictions", Value::U64(acc.cache_evictions))
        .with("cache_compactions", Value::U64(acc.cache_compactions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_telemetry::Trace;

    #[test]
    fn serve_events_render_through_the_standard_sinks() {
        let acc = RequestAccounting {
            request: "00c0ffee00c0ffee".into(),
            client: "ci".into(),
            status: "clean".into(),
            reused: 2,
            fresh: 1,
            cache_hits: 2,
            cache_misses: 1,
            ..Default::default()
        };
        let rec = CacheRecovery { recovered: 5, resumed_torn: true, ..Default::default() };
        let drain = DrainAccounting {
            abandoned: 1,
            sessions: 9,
            cache_entries: 4,
            cache_file_bytes: 2048,
            cache_evictions: 7,
            cache_compactions: 2,
        };
        let trace = Trace::from_events(vec![
            recover_event(&rec),
            request_event(&acc),
            shed_event("overloaded", "ci"),
            goaway_event("idle-timeout"),
            drain_event(&drain),
        ]);
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 5);
        assert!(jsonl.contains(r#""kind":"recover""#));
        assert!(jsonl.contains(r#""kind":"request""#));
        assert!(jsonl.contains(r#""kind":"shed""#));
        assert!(jsonl.contains(r#""code":"overloaded""#));
        assert!(jsonl.contains(r#""kind":"goaway""#));
        assert!(jsonl.contains(r#""reason":"idle-timeout""#));
        assert!(jsonl.contains(r#""kind":"drain""#));
        assert!(jsonl.contains(r#""cache_compactions":2"#));
        let e = request_event(&acc);
        assert_eq!(e.field_str("status"), Some("clean"));
        assert_eq!(e.field_str("request"), Some("00c0ffee00c0ffee"));
        assert_eq!(e.field_u64("cache_hits"), Some(2));
    }
}
