//! Telemetry adapters: serve outcomes as structured trace events.
//!
//! Mirrors `epre_harness::events` — the daemon aggregates each request
//! into a typed accounting struct, and these adapters render it as
//! [`Event`]s for the server's `--telemetry` JSON Lines log. Because the
//! events are derived from deterministic per-request accounting, a given
//! request sequence always produces the same log (modulo the `seq`
//! numbering, which is per-batch in an append-only log).

use epre_telemetry::{Event, Value};

use crate::cache::CacheRecovery;

/// Per-request accounting rendered into one `request` event.
#[derive(Debug, Clone, Default)]
pub struct RequestAccounting {
    /// The client that sent the request.
    pub client: String,
    /// `"clean"` or `"degraded"`.
    pub status: String,
    /// Functions replayed from the result cache.
    pub reused: u64,
    /// Functions freshly optimized.
    pub fresh: u64,
    /// Contained pass faults.
    pub faults: u64,
    /// Functions rolled back to their input form.
    pub rollbacks: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
}

/// One completed request as a `request` event.
pub fn request_event(acc: &RequestAccounting) -> Event {
    Event::instant("request", "", "serve")
        .with("client", Value::Str(acc.client.clone()))
        .with("status", Value::Str(acc.status.clone()))
        .with("reused", Value::U64(acc.reused))
        .with("fresh", Value::U64(acc.fresh))
        .with("faults", Value::U64(acc.faults))
        .with("rollbacks", Value::U64(acc.rollbacks))
        .with("cache_hits", Value::U64(acc.cache_hits))
        .with("cache_misses", Value::U64(acc.cache_misses))
}

/// A shed request (overload, expired deadline, client quarantine,
/// or unparsable input) as a `shed` event — the typed alternative to a
/// hang.
pub fn shed_event(code: &str, client: &str) -> Event {
    Event::instant("shed", "", "serve")
        .with("code", Value::Str(code.to_string()))
        .with("client", Value::Str(client.to_string()))
}

/// Cache recovery at startup as a `recover` event.
pub fn recover_event(rec: &CacheRecovery) -> Event {
    Event::instant("recover", "", "serve")
        .with("recovered", Value::U64(rec.recovered as u64))
        .with("resumed_torn", Value::Bool(rec.resumed_torn))
        .with("corrupt_dropped", Value::U64(rec.corrupt_dropped as u64))
        .with("discarded_incompatible", Value::Bool(rec.discarded_incompatible))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_telemetry::Trace;

    #[test]
    fn serve_events_render_through_the_standard_sinks() {
        let acc = RequestAccounting {
            client: "ci".into(),
            status: "clean".into(),
            reused: 2,
            fresh: 1,
            cache_hits: 2,
            cache_misses: 1,
            ..Default::default()
        };
        let rec = CacheRecovery { recovered: 5, resumed_torn: true, ..Default::default() };
        let trace = Trace::from_events(vec![
            recover_event(&rec),
            request_event(&acc),
            shed_event("overloaded", "ci"),
        ]);
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains(r#""kind":"recover""#));
        assert!(jsonl.contains(r#""kind":"request""#));
        assert!(jsonl.contains(r#""kind":"shed""#));
        assert!(jsonl.contains(r#""code":"overloaded""#));
        let e = request_event(&acc);
        assert_eq!(e.field_str("status"), Some("clean"));
        assert_eq!(e.field_u64("cache_hits"), Some(2));
    }
}
