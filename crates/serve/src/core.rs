//! The transport-independent request engine.
//!
//! [`ServerCore`] owns everything a request needs — the result cache,
//! the per-client quarantine, the counters, the telemetry log — and
//! exposes one entry point, [`ServerCore::handle`], that maps a decoded
//! [`Request`] to a stream of [`Response`] frames through a caller-
//! supplied emitter. The TCP and stdio transports in
//! [`crate::server`] are thin shells around it, and tests drive it
//! in-process with a `Vec` emitter — same engine, no sockets.
//!
//! # The optimize path
//!
//! ```text
//! quarantine gate → parse → deadline admission → per-function cache
//! lookup → governed pipeline over the misses → reassemble in module
//! order → differential oracle over the WHOLE module → write-ahead
//! cache insert of clean fresh functions → frames
//! ```
//!
//! The oracle runs over the assembled module whenever *any* function
//! was freshly optimized, so a replayed body that rides along with new
//! work is re-checked in context. A fully-replayed request skips the
//! oracle — safely, because a body only enters the cache after passing
//! the oracle under the identical (config, input) key, the journal
//! fingerprint-verifies every body it loads, and each replay is
//! re-parsed and name-checked. Corruption anywhere in that chain
//! degrades the entry to a miss (and a fresh, oracle-checked run); it
//! never changes an answer.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use epre::{Budget, OptLevel, Optimizer, RequestBudget};
use epre_harness::{
    header_line, run_module_governed, FaultPolicy, Harness, OracleConfig, PassFaultModel,
    QuarantineOutcome, SandboxReport, ServeQuarantine,
};
use epre_ir::{parse_function, parse_module, Function};
use epre_lint::LintOptions;
use epre_telemetry::{Event, FunctionTrace, Trace, Tracer, Value};

use crate::cache::ResultCache;
use crate::events::{
    drain_event, goaway_event, recover_event, request_event, shed_event, DrainAccounting,
    RequestAccounting,
};
use crate::metrics::ServeMetrics;
use crate::protocol::{DoneFrame, ErrorCode, FunctionFrame, OptimizeRequest, Request, Response};
use crate::recorder::{FlightRecorder, RequestSummary};

/// Serve-side configuration (per-request knobs arrive with the request).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission queue depth; connection attempts beyond it are shed
    /// with a typed `overloaded` response.
    pub queue_capacity: usize,
    /// Worker threads draining the queue. A keep-alive session pins its
    /// worker until it ends, so size this above the expected number of
    /// concurrent long-lived clients or new connections will queue
    /// behind them (the `max_session_requests` churn bound guarantees
    /// they eventually drain regardless).
    pub workers: usize,
    /// Parallel jobs inside one request's governed driver.
    pub request_jobs: usize,
    /// Per-request circuit-breaker threshold (faults per pass).
    pub breaker_threshold: usize,
    /// Per-client quarantine threshold: distinct (pass, module) fault
    /// evidence pairs before a client's requests are refused.
    pub client_threshold: usize,
    /// Differential-oracle settings applied to every response.
    pub oracle: OracleConfig,
    /// Server-side resource caps; a request's deadline can only tighten
    /// them.
    pub caps: Budget,
    /// Chaos injection: splice this adversarial pass model into every
    /// pipeline (chaos-testing only).
    pub chaos: Option<PassFaultModel>,
    /// Keep-alive: how long a session may sit idle between frames before
    /// the server ends it with `goaway idle-timeout`.
    pub idle_timeout: Duration,
    /// Keep-alive: requests one session may serve before the server ends
    /// it with `goaway max-requests` — a churn bound so long-lived
    /// clients periodically rebalance across workers.
    pub max_session_requests: usize,
    /// Graceful drain: how long [`crate::server::serve_tcp`] waits for
    /// in-flight work after shutdown before abandoning stragglers.
    pub drain_deadline: Duration,
    /// Slow-request threshold, microseconds: any request at or over it
    /// writes its flight-recorder summary (full span breakdown) to the
    /// slow log *before* its terminal frame. `None` disables the log.
    pub slow_us: Option<u64>,
    /// Flight-recorder ring size (recent request summaries + daemon
    /// events kept in memory for SIGQUIT / crash dumps).
    pub recorder_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 16,
            workers: 2,
            request_jobs: 1,
            breaker_threshold: 3,
            client_threshold: 3,
            oracle: OracleConfig::default(),
            caps: Budget::governed(),
            chaos: None,
            idle_timeout: Duration::from_secs(10),
            max_session_requests: 256,
            drain_deadline: Duration::from_secs(30),
            slow_us: None,
            recorder_capacity: 256,
        }
    }
}

/// Monotonic server counters, exported through `stats` frames and the
/// telemetry log. All relaxed atomics — they are counters, not locks.
#[derive(Debug, Default)]
pub struct ServerStats {
    requests: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_quarantined: AtomicU64,
    rejected_parse: AtomicU64,
    rejected_protocol: AtomicU64,
    functions_reused: AtomicU64,
    functions_fresh: AtomicU64,
    sessions: AtomicU64,
    conn_empty: AtomicU64,
    goaway_idle: AtomicU64,
    goaway_max_requests: AtomicU64,
    goaway_draining: AtomicU64,
    drain_abandoned: AtomicU64,
}

/// Why the server ends a keep-alive session with a `goaway` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoawayReason {
    /// No frame arrived within the session idle timeout.
    IdleTimeout,
    /// The session served its per-connection request cap.
    MaxRequests,
    /// The server is draining toward shutdown.
    Draining,
}

impl GoawayReason {
    /// Wire label, carried in the `goaway` frame's `reason` field.
    pub fn label(self) -> &'static str {
        match self {
            GoawayReason::IdleTimeout => "idle-timeout",
            GoawayReason::MaxRequests => "max-requests",
            GoawayReason::Draining => "draining",
        }
    }
}

/// The engine: cache + quarantine + counters + telemetry + live
/// metrics + flight recorder, no transport.
pub struct ServerCore {
    /// The serving configuration.
    pub config: ServeConfig,
    cache: ResultCache,
    quarantine: ServeQuarantine,
    stats: ServerStats,
    telemetry: Option<Mutex<Box<dyn Write + Send>>>,
    metrics: ServeMetrics,
    recorder: FlightRecorder,
    slow_log: Option<Mutex<Box<dyn Write + Send>>>,
    shutdown: AtomicBool,
}

impl ServerCore {
    /// Build an engine over `cache`. Logs the cache's recovery event
    /// immediately if a telemetry sink is attached later — call
    /// [`ServerCore::attach_telemetry`] before serving to capture it.
    pub fn new(config: ServeConfig, cache: ResultCache) -> ServerCore {
        ServerCore {
            quarantine: ServeQuarantine::new(config.client_threshold),
            metrics: ServeMetrics::new(config.workers),
            recorder: FlightRecorder::new(config.recorder_capacity),
            config,
            cache,
            stats: ServerStats::default(),
            telemetry: None,
            slow_log: None,
            shutdown: AtomicBool::new(false),
        }
    }

    /// Attach a telemetry sink (JSON Lines, one event per line) and log
    /// the cache-recovery event through it.
    pub fn attach_telemetry(&mut self, sink: Box<dyn Write + Send>) {
        self.telemetry = Some(Mutex::new(sink));
        let rec = self.cache.recovery();
        self.log_events(vec![recover_event(&rec)]);
    }

    /// Attach the slow-request log (JSON Lines, one summary per slow
    /// request). Without a sink, slow requests go to stderr.
    pub fn attach_slow_log(&mut self, sink: Box<dyn Write + Send>) {
        self.slow_log = Some(Mutex::new(sink));
    }

    /// The result cache (counters are read by `stats`).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The live-metrics handles (transports update the gauges).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The flight recorder (the CLI dumps it on SIGQUIT and at drain).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Render the live metrics plus every `stats` counter, as Prometheus
    /// text exposition (the default) or the JSON mirror when `format` is
    /// `"json"`. The stats counters are *mirrored in at render time*
    /// from the same atomics `submit --stats` reads — the two views
    /// reconcile by construction, not by double bookkeeping. Stats names
    /// gain the `epre_` prefix; point-in-time values (cache occupancy,
    /// open quarantines) render as gauges, monotonic ones as `_total`
    /// counters.
    pub fn render_metrics(&self, format: &str) -> String {
        let mut snap = self.metrics.snapshot();
        for (name, value) in self.stats_snapshot() {
            match name.as_str() {
                "cache_entries" | "cache_file_bytes" | "cache_live_bytes"
                | "quarantined_clients" => snap.push_gauge(
                    &format!("epre_{name}"),
                    None,
                    "point-in-time server state, mirrored from the stats snapshot",
                    value,
                ),
                _ => snap.push_counter(
                    &format!("epre_{name}_total"),
                    None,
                    "monotonic server counter, mirrored from the stats snapshot",
                    value,
                ),
            }
        }
        if format == "json" {
            snap.to_json()
        } else {
            snap.to_text()
        }
    }

    /// Has a `shutdown` request been accepted?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flip the shutdown flag from outside a request — the SIGTERM
    /// path's entry into the same graceful drain a `shutdown` request
    /// takes. Idempotent.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Record an admission-queue overflow (the acceptor sheds the
    /// connection with a typed `overloaded` response).
    pub fn note_overload_shed(&self) {
        self.stats.shed_overload.fetch_add(1, Ordering::Relaxed);
        self.recorder.note("shed", "admission queue full");
        self.log_events(vec![shed_event(ErrorCode::Overloaded.label(), "")]);
    }

    /// Record one keep-alive session beginning (a connection that sent
    /// at least one frame).
    pub fn note_session(&self) {
        self.stats.sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection that closed before sending any frame — a port
    /// scan, a health check, a peer that thought better of it. Counted,
    /// never interpreted: control traffic (the shutdown poke) is a real
    /// `ping` frame, so an empty connection can only ever be noise.
    pub fn note_empty_conn(&self) {
        self.stats.conn_empty.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a session ended by `goaway`.
    pub fn note_goaway(&self, reason: GoawayReason) {
        let counter = match reason {
            GoawayReason::IdleTimeout => &self.stats.goaway_idle,
            GoawayReason::MaxRequests => &self.stats.goaway_max_requests,
            GoawayReason::Draining => &self.stats.goaway_draining,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.recorder.note("goaway", reason.label());
        self.log_events(vec![goaway_event(reason.label())]);
    }

    /// Record in-flight sessions abandoned at the drain deadline.
    pub fn note_drain_abandoned(&self, n: u64) {
        self.stats.drain_abandoned.fetch_add(n, Ordering::Relaxed);
    }

    /// Graceful drain's final act: compact and fsync the cache, then log
    /// one `drain` event with the session ledger. Called by the
    /// transports after admitted work is done (or abandoned at the
    /// deadline) — never on the hard-kill path, whose whole point is
    /// that recovery needs no goodbye.
    ///
    /// # Errors
    /// The cache flush (compaction staging write, rename, or fsync).
    pub fn drain_flush(&self) -> io::Result<()> {
        let flush = self.cache.flush();
        self.recorder.note("drain", "cache flushed; daemon exiting");
        let s = &self.stats;
        self.log_events(vec![drain_event(&DrainAccounting {
            abandoned: s.drain_abandoned.load(Ordering::Relaxed),
            sessions: s.sessions.load(Ordering::Relaxed),
            cache_entries: self.cache.len() as u64,
            cache_file_bytes: self.cache.file_bytes(),
            cache_evictions: self.cache.evictions(),
            cache_compactions: self.cache.compactions(),
        })]);
        flush
    }

    /// Record a request refused before reaching `handle` (unreadable or
    /// malformed frame).
    pub fn note_protocol_reject(&self) {
        self.stats.rejected_protocol.fetch_add(1, Ordering::Relaxed);
        self.log_events(vec![shed_event(ErrorCode::Protocol.label(), "")]);
    }

    /// Counter snapshot in stable, documented order.
    pub fn stats_snapshot(&self) -> Vec<(String, u64)> {
        let s = &self.stats;
        let rec = self.cache.recovery();
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("requests".into(), load(&s.requests)),
            ("completed".into(), load(&s.completed)),
            ("degraded".into(), load(&s.degraded)),
            ("shed_overload".into(), load(&s.shed_overload)),
            ("shed_deadline".into(), load(&s.shed_deadline)),
            ("shed_quarantined".into(), load(&s.shed_quarantined)),
            ("rejected_parse".into(), load(&s.rejected_parse)),
            ("rejected_protocol".into(), load(&s.rejected_protocol)),
            ("functions_reused".into(), load(&s.functions_reused)),
            ("functions_fresh".into(), load(&s.functions_fresh)),
            ("cache_hits".into(), self.cache.hits()),
            ("cache_misses".into(), self.cache.misses()),
            ("cache_entries".into(), self.cache.len() as u64),
            ("cache_recovered".into(), rec.recovered as u64),
            ("cache_recovered_torn".into(), u64::from(rec.resumed_torn)),
            ("cache_corrupt_dropped".into(), rec.corrupt_dropped as u64),
            ("quarantined_clients".into(), self.quarantine.open_clients().len() as u64),
            // Cache health (the operator's view of bounded growth) and
            // the keep-alive session ledger — appended after the original
            // counters so existing consumers keep their line numbers.
            ("cache_file_bytes".into(), self.cache.file_bytes()),
            ("cache_live_bytes".into(), self.cache.live_bytes()),
            ("cache_evictions".into(), self.cache.evictions()),
            ("cache_compactions".into(), self.cache.compactions()),
            ("sessions".into(), load(&s.sessions)),
            ("conn_empty".into(), load(&s.conn_empty)),
            ("goaway_idle".into(), load(&s.goaway_idle)),
            ("goaway_max_requests".into(), load(&s.goaway_max_requests)),
            ("goaway_draining".into(), load(&s.goaway_draining)),
            ("drain_abandoned".into(), load(&s.drain_abandoned)),
        ]
    }

    /// Serve one decoded request, emitting response frames through
    /// `emit`. Always ends with exactly one terminal frame. I/O errors
    /// from `emit` abort the conversation (the client vanished — its
    /// retry will be served from cache).
    pub fn handle(
        &self,
        req: &Request,
        emit: &mut dyn FnMut(Response) -> io::Result<()>,
    ) -> io::Result<()> {
        match req {
            Request::Ping => emit(Response::Ack { what: "pong".into() }),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                emit(Response::Ack { what: "shutdown".into() })
            }
            Request::Stats => emit(Response::Stats(self.stats_snapshot())),
            Request::Metrics { format } => {
                emit(Response::Metrics { body: self.render_metrics(format) })
            }
            Request::Optimize(r) => self.handle_optimize(r, emit),
        }
    }

    /// Retire a finished (or refused) request: count it against the
    /// slow-request threshold, write the slow log *before* the caller
    /// emits the terminal frame (so any answer a client holds is already
    /// on disk), and move the summary from in-flight into the ring.
    fn finish_request(&self, token: u64, summary: RequestSummary) {
        if self.config.slow_us.is_some_and(|t| summary.duration_us >= t) {
            self.metrics.slow_requests.inc();
            let line = summary.slow_line();
            if let Some(sink) = &self.slow_log {
                let mut w = sink.lock().expect("slow log poisoned");
                let _ = w.write_all(line.as_bytes());
                let _ = w.write_all(b"\n");
                let _ = w.flush();
            } else {
                eprintln!("epre serve: slow request: {line}");
            }
        }
        self.recorder.end(token, summary);
    }

    /// Refuse a request with a typed error before (or instead of) the
    /// pipeline: one latency observation under `class`, one recorder
    /// entry with the error code as status, one terminal `error` frame
    /// echoing the request id.
    #[allow(clippy::too_many_arguments)]
    fn refuse(
        &self,
        rid: &str,
        client: &str,
        class: &'static str,
        code: ErrorCode,
        message: String,
        token: u64,
        started: Instant,
        emit: &mut dyn FnMut(Response) -> io::Result<()>,
    ) -> io::Result<()> {
        let duration_us = started.elapsed().as_micros() as u64;
        self.metrics.observe_latency(class, duration_us);
        self.finish_request(token, RequestSummary {
            request: rid.to_string(),
            client: client.to_string(),
            class: class.to_string(),
            status: code.label().to_string(),
            reused: 0,
            fresh: 0,
            faults: 0,
            duration_us,
            spans: Vec::new(),
        });
        emit(Response::Error { code, message, request: rid.to_string() })
    }

    fn handle_optimize(
        &self,
        r: &OptimizeRequest,
        emit: &mut dyn FnMut(Response) -> io::Result<()>,
    ) -> io::Result<()> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        // The end-to-end trace id: client-minted when present, derived
        // from the same content the idempotency key covers otherwise —
        // either way it is echoed in every frame of the answer.
        let rid = if r.request.is_empty() { r.request_id() } else { r.request.clone() };
        let started = Instant::now();
        let token = self.recorder.begin(&rid, &r.client);
        self.metrics.in_flight.inc();
        let result = self.optimize_admitted(r, &rid, token, started, emit);
        self.metrics.in_flight.dec();
        result
    }

    fn optimize_admitted(
        &self,
        r: &OptimizeRequest,
        rid: &str,
        token: u64,
        started: Instant,
        emit: &mut dyn FnMut(Response) -> io::Result<()>,
    ) -> io::Result<()> {
        // Gate 1: a quarantined client is refused before any work.
        if self.quarantine.is_open(&r.client) {
            self.stats.shed_quarantined.fetch_add(1, Ordering::Relaxed);
            self.log_events(vec![shed_event(ErrorCode::Quarantined.label(), &r.client)]);
            let message = format!(
                "client {:?} is quarantined ({} distinct fault evidence pairs)",
                r.client,
                self.quarantine.evidence_of(&r.client)
            );
            return self
                .refuse(rid, &r.client, "shed", ErrorCode::Quarantined, message, token, started, emit);
        }

        // Gate 2: the request must name a servable configuration.
        let Some(level) = level_from_label(&r.level) else {
            self.stats.rejected_protocol.fetch_add(1, Ordering::Relaxed);
            let message = format!("unknown optimization level {:?}", r.level);
            return self
                .refuse(rid, &r.client, "poison", ErrorCode::Protocol, message, token, started, emit);
        };
        let policy = match policy_from_label(&r.policy) {
            Ok(p) => p,
            Err(message) => {
                self.stats.rejected_protocol.fetch_add(1, Ordering::Relaxed);
                return self.refuse(
                    rid, &r.client, "poison", ErrorCode::Protocol, message, token, started, emit,
                );
            }
        };

        // Gate 3: the module must parse.
        let module = match parse_module(&r.module_text) {
            Ok(m) => m,
            Err(e) => {
                self.stats.rejected_parse.fetch_add(1, Ordering::Relaxed);
                self.log_events(vec![shed_event(ErrorCode::Parse.label(), &r.client)]);
                let message = format!("module does not parse: {e}");
                return self.refuse(
                    rid, &r.client, "poison", ErrorCode::Parse, message, token, started, emit,
                );
            }
        };

        // Gate 4: deadline admission. The keyed (requested) deadline
        // names the work for caching; the live (remaining) deadline
        // governs it.
        let rb = RequestBudget::admit(self.config.caps, r.deadline_ms);
        let config_line = header_line(level.label(), policy.label(), &rb.keyed_budget());
        let t_admit = Instant::now();

        // Per-function cache partition: a hit must re-parse to a
        // function of the same name, or it degrades to a miss.
        let n = module.functions.len();
        let mut slots: Vec<Option<Function>> = vec![None; n];
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, f) in module.functions.iter().enumerate() {
            let key = ResultCache::key(&config_line, &format!("{f}"));
            let replayed = self.cache.lookup(&key).and_then(|body| {
                let parsed = parse_function(&body).ok()?;
                (parsed.name == f.name).then_some(parsed)
            });
            match replayed {
                Some(parsed) => slots[i] = Some(parsed),
                None => miss_idx.push(i),
            }
        }
        let reused = n - miss_idx.len();
        let t_probe = Instant::now();

        // Run the governed pipeline over the misses only.
        let mut report = SandboxReport::default();
        if !miss_idx.is_empty() {
            let Some(live) = rb.live_budget() else {
                self.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
                self.log_events(vec![shed_event(ErrorCode::Deadline.label(), &r.client)]);
                let message = "request deadline expired before optimization started".to_string();
                return self.refuse(
                    rid, &r.client, "shed", ErrorCode::Deadline, message, token, started, emit,
                );
            };
            let mut sub = module.clone();
            sub.functions = miss_idx.iter().map(|&i| module.functions[i].clone()).collect();
            let chaos = self.config.chaos;
            let metrics = &self.metrics;
            let passes_for = move || {
                let mut passes = Vec::new();
                if let Some(model) = chaos {
                    passes.push(model.build());
                }
                passes.extend(Optimizer::new(level).passes());
                metrics.instrument(passes)
            };
            let governed = run_module_governed(
                &sub,
                &passes_for,
                policy,
                &LintOptions::invariants_only(),
                &live,
                self.config.breaker_threshold,
                self.config.request_jobs,
            );
            match governed {
                Ok((optimized, rep)) => {
                    for (slot, f) in miss_idx.iter().zip(optimized.functions) {
                        slots[*slot] = Some(f);
                    }
                    report = rep;
                }
                // Only FailFast returns Err, and fail-fast was rejected
                // above — but a daemon treats "impossible" as sheddable,
                // not as a panic.
                Err(fault) => {
                    self.stats.rejected_protocol.fetch_add(1, Ordering::Relaxed);
                    let message = format!("pipeline fault escaped containment: {fault}");
                    return self.refuse(
                        rid, &r.client, "poison", ErrorCode::Protocol, message, token, started,
                        emit,
                    );
                }
            }
        }
        let t_run = Instant::now();

        // Assemble in module order. Any request that optimized at least
        // one function runs the differential oracle over the WHOLE
        // module — replayed and fresh functions alike. A fully-replayed
        // request skips it: every cached body was oracle-validated at
        // insert time under this exact (config, input) key, is
        // fingerprint-verified when the journal loads, and was re-parsed
        // and name-checked above — a second oracle run would re-prove a
        // proven fact at full interpretation cost, which is exactly the
        // work the cache exists to skip.
        let mut candidate = module.clone();
        candidate.functions =
            slots.into_iter().map(|s| s.expect("every slot filled")).collect();
        let out = if miss_idx.is_empty() {
            epre_harness::HardenedOutput {
                module: candidate,
                faults: Vec::new(),
                divergences: Vec::new(),
                retries: 0,
                skipped: 0,
                quarantined: Vec::new(),
                inconclusive: 0,
            }
        } else {
            let harness = Harness {
                level,
                policy,
                oracle: self.config.oracle,
                budget: rb.live_budget().unwrap_or(self.config.caps),
                breaker_threshold: self.config.breaker_threshold,
                function_deadline: None,
            };
            harness.finish_with_oracle(&module, candidate, report)
        };
        let t_oracle = Instant::now();
        let rolled_back: Vec<String> =
            out.rolled_back_functions().into_iter().map(str::to_string).collect();

        // Write-ahead cache insert: only functions whose pipeline ran
        // clean and complete, from a request with no quarantine/skip
        // (a skipped pass would cache an under-optimized body that a
        // fresh run would not reproduce).
        let request_fully_ran = out.quarantined.is_empty() && out.skipped == 0;
        let miss_set: std::collections::BTreeSet<usize> = miss_idx.iter().copied().collect();
        if request_fully_ran {
            for (i, (input_f, out_f)) in
                module.functions.iter().zip(&out.module.functions).enumerate()
            {
                let clean = !rolled_back.iter().any(|rb| rb == &input_f.name)
                    && !out.faults.iter().any(|ft| ft.function == input_f.name);
                if miss_set.contains(&i) && clean {
                    let key = ResultCache::key(&config_line, &format!("{input_f}"));
                    if let Err(e) = self.cache.insert(&key, &format!("{out_f}")) {
                        // A full disk must not fail the request: the
                        // result is still correct, only uncached.
                        self.log_events(vec![shed_event("cache-write-failed", &r.client)]);
                        let _ = e;
                        break;
                    }
                }
            }
        }

        // Per-client quarantine evidence: each contained fault counts
        // once per distinct (pass, module) pair.
        let module_fp = format!("{:016x}", epre_harness::fingerprint64(&r.module_text));
        let mut client_quarantined = false;
        for fault in &out.faults {
            if self.quarantine.record(&r.client, &fault.pass, &module_fp)
                == QuarantineOutcome::Tripped
            {
                client_quarantined = true;
            }
        }

        // Frames: one per function in module order, then the terminal.
        for (i, f) in module.functions.iter().enumerate() {
            emit(Response::Function(FunctionFrame {
                name: f.name.clone(),
                cached: !miss_set.contains(&i),
                faults: out.faults.iter().filter(|ft| ft.function == f.name).count() as u64,
                rolled_back: rolled_back.iter().any(|rb| rb == &f.name),
                request: rid.to_string(),
            }))?;
        }
        let status = if out.is_clean() { "clean" } else { "degraded" };
        let idempotency =
            if r.idempotency.is_empty() { r.idempotency_key() } else { r.idempotency.clone() };
        let done = DoneFrame {
            status: status.into(),
            idempotency,
            request: rid.to_string(),
            module_text: format!("{}", out.module),
            reused: reused as u64,
            fresh: miss_idx.len() as u64,
            faults: out.faults.len() as u64,
            rollbacks: rolled_back.len() as u64,
            quarantined: out.quarantined.len() as u64,
            inconclusive: out.inconclusive as u64,
            client_quarantined,
        };

        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        if status == "degraded" {
            self.stats.degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.functions_reused.fetch_add(reused as u64, Ordering::Relaxed);
        self.stats.functions_fresh.fetch_add(miss_idx.len() as u64, Ordering::Relaxed);

        // Request class + latency: a fully-replayed answer is warm,
        // anything that ran the pipeline is cold.
        let class = if miss_idx.is_empty() { "warm" } else { "cold" };
        let t_done = Instant::now();
        let seg = |a: Instant, b: Instant| b.saturating_duration_since(a);
        let segments = [
            ("admission", started, t_admit, 1u64),
            ("cache-probe", t_admit, t_probe, n as u64),
            ("governed-run", t_probe, t_run, miss_idx.len() as u64),
            ("oracle", t_run, t_oracle, u64::from(!miss_idx.is_empty())),
            ("respond", t_oracle, t_done, 1),
        ];

        // The per-request trace lane: virtual durations are derived from
        // the request's shape (so traced runs are byte-identical at any
        // --request-jobs), wall clocks ride along for the recorder and
        // are never exported.
        let mut lane = FunctionTrace::new(rid, 0);
        for (pass, a, b, dur) in segments {
            let fields = match pass {
                "admission" => vec![
                    ("client".to_string(), Value::Str(r.client.clone())),
                    ("level".to_string(), Value::Str(level.label().to_string())),
                    ("policy".to_string(), Value::Str(policy.label().to_string())),
                ],
                "cache-probe" => vec![
                    ("hits".to_string(), Value::U64(reused as u64)),
                    ("misses".to_string(), Value::U64(miss_idx.len() as u64)),
                ],
                "governed-run" => vec![
                    ("faults".to_string(), Value::U64(out.faults.len() as u64)),
                    ("retries".to_string(), Value::U64(out.retries as u64)),
                    ("skipped".to_string(), Value::U64(out.skipped as u64)),
                ],
                "oracle" => vec![
                    ("ran".to_string(), Value::Bool(!miss_idx.is_empty())),
                    ("inconclusive".to_string(), Value::U64(out.inconclusive as u64)),
                    ("rollbacks".to_string(), Value::U64(rolled_back.len() as u64)),
                ],
                _ => vec![("status".to_string(), Value::Str(status.to_string()))],
            };
            lane.span(pass, dur, seg(a, b).as_nanos() as u64, fields);
        }
        let mut events = lane.events().to_vec();
        events.push(request_event(&RequestAccounting {
            request: rid.to_string(),
            client: r.client.clone(),
            status: status.into(),
            reused: reused as u64,
            fresh: miss_idx.len() as u64,
            faults: out.faults.len() as u64,
            rollbacks: rolled_back.len() as u64,
            cache_hits: reused as u64,
            cache_misses: miss_idx.len() as u64,
        }));
        self.log_events(events);

        let duration_us = started.elapsed().as_micros() as u64;
        self.metrics.observe_latency(class, duration_us);
        // Recorder + slow log settle BEFORE the terminal frame goes out:
        // an answer the client holds is always already accounted for.
        self.finish_request(token, RequestSummary {
            request: rid.to_string(),
            client: r.client.clone(),
            class: class.to_string(),
            status: status.to_string(),
            reused: reused as u64,
            fresh: miss_idx.len() as u64,
            faults: out.faults.len() as u64,
            duration_us,
            spans: segments
                .iter()
                .map(|(pass, a, b, _)| (pass.to_string(), seg(*a, *b).as_micros() as u64))
                .collect(),
        });

        emit(Response::Done(done))
    }

    fn log_events(&self, events: Vec<Event>) {
        if let Some(sink) = &self.telemetry {
            let rendered = Trace::from_events(events).to_jsonl();
            let mut w = sink.lock().expect("telemetry sink poisoned");
            // Telemetry is best-effort: a full disk must not take the
            // server down with it.
            let _ = w.write_all(rendered.as_bytes());
            let _ = w.flush();
        }
    }
}

/// Map a wire label to an [`OptLevel`] (all five levels are servable).
pub fn level_from_label(label: &str) -> Option<OptLevel> {
    let mut levels = OptLevel::PAPER_LEVELS.to_vec();
    levels.push(OptLevel::DistributionLvn);
    levels.into_iter().find(|l| l.label() == label)
}

/// Map a wire label to a [`FaultPolicy`]. `fail-fast` is rejected with
/// an explanation: a daemon degrades per function, it does not abort a
/// whole request on the first fault.
pub fn policy_from_label(label: &str) -> Result<FaultPolicy, String> {
    match label {
        "best-effort" => Ok(FaultPolicy::BestEffort),
        "retry-then-skip" => Ok(FaultPolicy::RetryThenSkip),
        "fail-fast" => Err("policy 'fail-fast' is not servable: the daemon degrades per \
                            function instead of failing whole requests"
            .into()),
        other => Err(format!("unknown fault policy {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_frontend::{compile, NamingMode};
    use std::sync::Arc;

    const SRC: &str = "function tri(n)\n\
                       integer n, i, s\n\
                       begin\n\
                       s = 0\n\
                       do i = 1, n\n\
                         s = s + i\n\
                       enddo\n\
                       return s\nend\n\
                       function mix(a, b)\n\
                       integer a, b, t\n\
                       begin\n\
                       t = a * b + a\n\
                       return t + a * b\nend\n";

    fn module_text() -> String {
        format!("{}", compile(SRC, NamingMode::Disciplined).unwrap())
    }

    fn optimize_request(text: &str) -> OptimizeRequest {
        OptimizeRequest {
            client: "test".into(),
            level: "distribution".into(),
            policy: "best-effort".into(),
            deadline_ms: None,
            idempotency: String::new(),
            request: String::new(),
            module_text: text.to_string(),
        }
    }

    fn drive(core: &ServerCore, req: &Request) -> Vec<Response> {
        let mut frames = Vec::new();
        core.handle(req, &mut |resp| {
            frames.push(resp);
            Ok(())
        })
        .unwrap();
        frames
    }

    fn done_of(frames: &[Response]) -> &DoneFrame {
        match frames.last() {
            Some(Response::Done(d)) => d,
            other => panic!("expected a done frame, got {other:?}"),
        }
    }

    #[test]
    fn serves_a_clean_module_and_matches_the_harness() {
        let text = module_text();
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let frames = drive(&core, &Request::Optimize(optimize_request(&text)));
        assert_eq!(frames.len(), 3, "two function frames + done");
        let done = done_of(&frames);
        assert_eq!(done.status, "clean");
        assert_eq!((done.reused, done.fresh), (0, 2));

        // Byte-identical to the plain hardened run under the same knobs.
        let module = parse_module(&text).unwrap();
        let harness = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        let expected = harness.optimize(&module).unwrap();
        assert_eq!(done.module_text, format!("{}", expected.module));
    }

    #[test]
    fn second_submit_is_served_from_cache_byte_identically() {
        let text = module_text();
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let first = drive(&core, &Request::Optimize(optimize_request(&text)));
        let second = drive(&core, &Request::Optimize(optimize_request(&text)));
        let (d1, d2) = (done_of(&first), done_of(&second));
        assert_eq!((d2.reused, d2.fresh), (2, 0), "warm submit reuses every function");
        assert_eq!(d1.module_text, d2.module_text, "cache replay is byte-identical");
        assert_eq!(d1.idempotency, d2.idempotency);
        for f in &second[..2] {
            match f {
                Response::Function(f) => assert!(f.cached),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    #[test]
    fn chaos_pass_degrades_but_never_lies() {
        let text = module_text();
        let config =
            ServeConfig { chaos: Some(PassFaultModel::NonTerminating), ..Default::default() };
        let core = ServerCore::new(config, ResultCache::in_memory());
        let frames = drive(&core, &Request::Optimize(optimize_request(&text)));
        let done = done_of(&frames);
        assert_eq!(done.status, "degraded");
        assert!(done.faults >= 1, "the chaos pass faulted under its budget");
        // The module still agrees with the input: faulting passes roll
        // back, and the oracle guards the assembled result.
        let module = parse_module(&text).unwrap();
        let out = parse_module(&done.module_text).unwrap();
        let divergences = epre_harness::compare_modules(&module, &out, &OracleConfig::default());
        assert!(divergences.is_empty());
        // Nothing from a degraded, quarantine-tripping request was
        // cached with a skipped pipeline.
        let warm = drive(&core, &Request::Optimize(optimize_request(&text)));
        assert_eq!(done_of(&warm).module_text, done.module_text, "degraded replay agrees");
    }

    #[test]
    fn parse_and_protocol_rejections_are_typed() {
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let mut bad = optimize_request("this is not iloc");
        let frames = drive(&core, &Request::Optimize(bad.clone()));
        assert!(
            matches!(frames.last(), Some(Response::Error { code: ErrorCode::Parse, .. })),
            "{frames:?}"
        );
        bad.level = "warp-speed".into();
        let frames = drive(&core, &Request::Optimize(bad.clone()));
        assert!(matches!(frames.last(), Some(Response::Error { code: ErrorCode::Protocol, .. })));
        bad.level = "distribution".into();
        bad.policy = "fail-fast".into();
        let frames = drive(&core, &Request::Optimize(bad));
        assert!(matches!(frames.last(), Some(Response::Error { code: ErrorCode::Protocol, .. })));
    }

    #[test]
    fn expired_deadline_is_shed_with_a_typed_response() {
        let text = module_text();
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let mut req = optimize_request(&text);
        req.deadline_ms = Some(0);
        let frames = drive(&core, &Request::Optimize(req));
        assert!(
            matches!(frames.last(), Some(Response::Error { code: ErrorCode::Deadline, .. })),
            "{frames:?}"
        );
        let stats = core.stats_snapshot();
        let shed = stats.iter().find(|(k, _)| k == "shed_deadline").unwrap().1;
        assert_eq!(shed, 1);
    }

    #[test]
    fn faulty_client_is_quarantined_and_then_refused() {
        let text = module_text();
        let config = ServeConfig {
            chaos: Some(PassFaultModel::QuadraticGrowth),
            client_threshold: 2,
            breaker_threshold: 100, // let every fault through to evidence
            ..Default::default()
        };
        let core = ServerCore::new(config, ResultCache::in_memory());
        // Distinct modules build distinct (pass, module) evidence pairs.
        let mut req1 = optimize_request(&text);
        req1.client = "noisy".into();
        let mut req2 = req1.clone();
        req2.module_text = format!("{text}\n");
        drive(&core, &Request::Optimize(req1.clone()));
        let frames = drive(&core, &Request::Optimize(req2));
        let tripped = match frames.last() {
            Some(Response::Done(d)) => d.client_quarantined,
            Some(Response::Error { code: ErrorCode::Quarantined, .. }) => true,
            other => panic!("unexpected terminal {other:?}"),
        };
        assert!(tripped, "second distinct faulting module trips threshold 2");
        let frames = drive(&core, &Request::Optimize(req1));
        assert!(
            matches!(frames.last(), Some(Response::Error { code: ErrorCode::Quarantined, .. })),
            "quarantined client is refused, {frames:?}"
        );
        // Other clients are unaffected by the noisy one.
        let clean_core_req = optimize_request(&text);
        let frames = drive(&core, &Request::Optimize(clean_core_req));
        assert!(matches!(frames.last(), Some(Response::Done(_))));
    }

    #[test]
    fn request_id_is_echoed_in_every_frame_and_derived_when_absent() {
        let text = module_text();
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let req = optimize_request(&text);
        let expected = req.request_id();
        let frames = drive(&core, &Request::Optimize(req.clone()));
        for f in &frames {
            match f {
                Response::Function(f) => assert_eq!(f.request, expected),
                Response::Done(d) => assert_eq!(d.request, expected),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        // A client-minted id wins over derivation, including on errors.
        let mut minted = optimize_request("not iloc");
        minted.request = "feedc0defeedc0de".into();
        let frames = drive(&core, &Request::Optimize(minted));
        match frames.last() {
            Some(Response::Error { code: ErrorCode::Parse, request, .. }) => {
                assert_eq!(request, "feedc0defeedc0de");
            }
            other => panic!("expected a parse refusal, got {other:?}"),
        }
    }

    #[test]
    fn metrics_render_reconciles_with_stats_by_construction() {
        let text = module_text();
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        drive(&core, &Request::Optimize(optimize_request(&text)));
        drive(&core, &Request::Optimize(optimize_request(&text)));
        drive(&core, &Request::Optimize(optimize_request("not iloc")));

        let frames = drive(&core, &Request::Metrics { format: "text".into() });
        let body = match frames.last() {
            Some(Response::Metrics { body }) => body.clone(),
            other => panic!("expected metrics, got {other:?}"),
        };
        // Every stats counter appears, mirrored, with the same value.
        for (name, value) in core.stats_snapshot() {
            let mirrored = match name.as_str() {
                "cache_entries" | "cache_file_bytes" | "cache_live_bytes"
                | "quarantined_clients" => format!("epre_{name} {value}"),
                _ => format!("epre_{name}_total {value}"),
            };
            assert!(body.contains(&mirrored), "missing {mirrored:?} in:\n{body}");
        }
        // Live series: one cold + one warm + one poison observation, and
        // the governed pipeline charged per-pass time.
        assert!(body.contains("epre_request_latency_us_count{class=\"cold\"} 1"), "{body}");
        assert!(body.contains("epre_request_latency_us_count{class=\"warm\"} 1"), "{body}");
        assert!(body.contains("epre_request_latency_us_count{class=\"poison\"} 1"), "{body}");
        assert!(body.contains("epre_pass_runs_total{pass=\"pre\"}"), "{body}");

        // The JSON render agrees and is integer-only.
        let frames = drive(&core, &Request::Metrics { format: "json".into() });
        match frames.last() {
            Some(Response::Metrics { body }) => {
                assert!(body.starts_with("{\"metrics\":["), "{body}");
                assert!(body.contains("\"epre_requests_total\""), "{body}");
                assert!(!body.contains('.'), "integer-only JSON render:\n{body}");
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn flight_recorder_accounts_for_served_and_refused_requests() {
        let text = module_text();
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        drive(&core, &Request::Optimize(optimize_request(&text)));
        drive(&core, &Request::Optimize(optimize_request("not iloc")));
        let dump = core.recorder().dump();
        assert!(dump.starts_with("{\"flight_recorder\":true,"), "{dump}");
        assert!(dump.contains("\"class\":\"cold\",\"status\":\"clean\""), "{dump}");
        assert!(dump.contains("\"class\":\"poison\",\"status\":\"parse\""), "{dump}");
        assert!(dump.contains("\"spans\":{\"admission\":"), "served spans recorded:\n{dump}");
        assert!(!dump.contains("\"in_flight\":true"), "nothing is in flight now:\n{dump}");
    }

    #[test]
    fn slow_log_writes_full_span_breakdown_before_the_answer() {
        let text = module_text();
        let config = ServeConfig { slow_us: Some(0), ..Default::default() };
        let mut core = ServerCore::new(config, ResultCache::in_memory());
        let sink: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        core.attach_slow_log(Box::new(SharedSink(Arc::clone(&sink))));
        drive(&core, &Request::Optimize(optimize_request(&text)));
        let logged = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        assert!(logged.starts_with("{\"slow\":true,"), "{logged}");
        for span in ["admission", "cache-probe", "governed-run", "oracle", "respond"] {
            assert!(logged.contains(&format!("\"{span}\":")), "missing {span}: {logged}");
        }
        let frames = drive(&core, &Request::Metrics { format: "text".into() });
        match frames.last() {
            Some(Response::Metrics { body }) => {
                assert!(body.contains("epre_slow_requests_total 1"), "{body}");
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stats_and_acks_answer() {
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let frames = drive(&core, &Request::Ping);
        assert_eq!(frames, vec![Response::Ack { what: "pong".into() }]);
        let frames = drive(&core, &Request::Stats);
        match &frames[0] {
            Response::Stats(counters) => {
                assert!(counters.iter().any(|(k, _)| k == "cache_hits"));
                assert!(counters.iter().any(|(k, _)| k == "requests"));
            }
            other => panic!("expected stats, got {other:?}"),
        }
        assert!(!core.shutdown_requested());
        drive(&core, &Request::Shutdown);
        assert!(core.shutdown_requested());
    }
}
