//! A mixed-workload load generator for the daemon.
//!
//! `epre loadgen` drives a running server with N concurrent retrying
//! clients for a fixed duration, mixing four request classes:
//!
//! * **cold** — a freshly generated module the cache has never seen;
//!   exercises the full governed pipeline,
//! * **warm** — a resubmit from a small primed pool; must replay from
//!   the cache byte-identically,
//! * **poison** — frame-level garbage on a raw connection; must draw a
//!   typed error and poison only that connection,
//! * **oversized** — a length prefix beyond [`MAX_FRAME_BYTES`]; must be
//!   refused typed, never buffered or hung on.
//!
//! Cold and warm traffic rides keep-alive [`Session`]s, so the
//! generator also exercises `goaway` rotation and transparent
//! reconnects under load. Every optimize answer is checked against
//! ground truth computed in-process by the same [`Harness`] the server
//! uses — a wrong byte anywhere is counted, and the run fails. Every
//! operation is timed; an operation exceeding the hang threshold is
//! counted as a hang even if it eventually answered, because "slower
//! than the threshold" is indistinguishable from "hung" to a caller
//! with a deadline.
//!
//! The report carries per-class p50/p95/p99 latency and throughput, and
//! renders both as text and as a JSON run entry for `BENCH_SERVE.json`.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use epre_harness::{FaultPolicy, Harness, SplitMix64};
use epre_ir::parse_module;

use crate::client::{ClientConfig, Session};
use crate::core::level_from_label;
use crate::protocol::{read_frame, OptimizeRequest, Response, MAX_FRAME_BYTES};

/// Load-generator knobs. The mix weights are relative — `{2, 6, 1, 1}`
/// means 60% warm — and a zero weight disables a class.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// How long to generate load.
    pub duration: Duration,
    /// Seed for the per-thread mix/jitter RNGs and module generation;
    /// equal seeds generate the same request sequence per thread.
    pub seed: u64,
    /// Relative weight of cold (never-seen module) requests.
    pub mix_cold: u32,
    /// Relative weight of warm (primed pool resubmit) requests.
    pub mix_warm: u32,
    /// Relative weight of poison (frame-level garbage) connections.
    pub mix_poison: u32,
    /// Relative weight of oversized (frame beyond the cap) connections.
    pub mix_oversized: u32,
    /// Distinct modules in the warm pool (primed before the clock).
    pub warm_pool: usize,
    /// An operation slower than this counts as a hang.
    pub hang_threshold: Duration,
    /// Scrape the daemon's live metrics at the end of the run and embed
    /// a reconciliation summary (`epre loadgen --metrics-snapshot`).
    pub metrics_snapshot: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:9944".into(),
            clients: 4,
            duration: Duration::from_secs(5),
            seed: 0x10AD,
            mix_cold: 3,
            mix_warm: 5,
            mix_poison: 1,
            mix_oversized: 1,
            warm_pool: 4,
            hang_threshold: Duration::from_secs(10),
            metrics_snapshot: false,
        }
    }
}

/// The optimization level the generator submits under (and computes
/// ground truth for): the paper's full pipeline, same as the serve
/// bench.
const LEVEL: &str = "distribution";

const CLASSES: [&str; 4] = ["cold", "warm", "poison", "oversized"];

/// Per-class latency/outcome accounting.
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Operations attempted.
    pub ops: u64,
    /// Answers that contradicted ground truth (or the wrong frame kind).
    pub wrongs: u64,
    /// Transient failures (exhausted retries, torn streams); not wrong
    /// answers, but not answers either.
    pub failures: u64,
    /// Operations that exceeded the hang threshold.
    pub hangs: u64,
    /// Latencies of completed operations, microseconds, sorted.
    pub latencies_us: Vec<u64>,
}

impl ClassStats {
    /// The `p`-th percentile latency in microseconds (nearest-rank on
    /// the sorted samples; 0 when the class saw no traffic).
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * p / 100.0).round() as usize;
        self.latencies_us[idx]
    }
}

/// The aggregated outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Concurrent client threads that generated the load.
    pub clients: usize,
    /// Wall-clock generation window, milliseconds.
    pub duration_ms: u64,
    /// Per-class statistics, in [`CLASSES`] order.
    pub classes: Vec<(String, ClassStats)>,
    /// Keep-alive session reconnects across all clients (goaway
    /// rotations and dropped peers, recovered transparently).
    pub reconnects: u64,
    /// The daemon's own view of the run, scraped from its live metrics
    /// at the end (`--metrics-snapshot`): a pre-rendered JSON object
    /// fragment, or `None` when no snapshot was taken.
    pub server: Option<String>,
}

impl LoadgenReport {
    /// Total operations across all classes.
    pub fn total_ops(&self) -> u64 {
        self.classes.iter().map(|(_, c)| c.ops).sum()
    }

    /// Total wrong answers (the number that must be zero).
    pub fn wrongs(&self) -> u64 {
        self.classes.iter().map(|(_, c)| c.wrongs).sum()
    }

    /// Total hangs (the other number that must be zero).
    pub fn hangs(&self) -> u64 {
        self.classes.iter().map(|(_, c)| c.hangs).sum()
    }

    /// Total transient failures.
    pub fn failures(&self) -> u64 {
        self.classes.iter().map(|(_, c)| c.failures).sum()
    }

    /// Overall throughput, operations per second.
    pub fn rps(&self) -> f64 {
        if self.duration_ms == 0 {
            return 0.0;
        }
        self.total_ops() as f64 * 1e3 / self.duration_ms as f64
    }

    /// The run as a `BENCH_SERVE.json` entry (appended with
    /// [`epre_bench::merge_named_runs`] by the CLI; `run` numbering is
    /// the merger's job).
    pub fn json_entry(&self) -> String {
        let mut s = format!(
            "{{\"loadgen\":true,\"clients\":{},\"duration_ms\":{},\"total_ops\":{},\
             \"rps\":{:.3},\"reconnects\":{},\"wrong\":{},\"hangs\":{},\"failures\":{},\
             \"classes\":{{",
            self.clients,
            self.duration_ms,
            self.total_ops(),
            self.rps(),
            self.reconnects,
            self.wrongs(),
            self.hangs(),
            self.failures(),
        );
        for (i, (name, c)) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let rps = if self.duration_ms == 0 {
                0.0
            } else {
                c.ops as f64 * 1e3 / self.duration_ms as f64
            };
            s.push_str(&format!(
                "\"{name}\":{{\"ops\":{},\"rps\":{rps:.3},\"p50_ms\":{:.3},\
                 \"p95_ms\":{:.3},\"p99_ms\":{:.3}}}",
                c.ops,
                c.percentile_us(50.0) as f64 / 1e3,
                c.percentile_us(95.0) as f64 / 1e3,
                c.percentile_us(99.0) as f64 / 1e3,
            ));
        }
        s.push_str("}}");
        if let Some(server) = &self.server {
            // Splice the daemon's own view in before the closing brace.
            s.pop();
            s.push_str(&format!(",\"server\":{server}}}"));
        }
        s
    }

    /// A human-readable summary table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "loadgen: {} client(s), {}ms, {} op(s), {:.0} op/s, {} reconnect(s)\n",
            self.clients,
            self.duration_ms,
            self.total_ops(),
            self.rps(),
            self.reconnects,
        );
        out.push_str("  class      ops  wrong  hang  fail    p50ms    p95ms    p99ms\n");
        for (name, c) in &self.classes {
            out.push_str(&format!(
                "  {name:<9}{:>5}{:>7}{:>6}{:>6}{:>9.2}{:>9.2}{:>9.2}\n",
                c.ops,
                c.wrongs,
                c.hangs,
                c.failures,
                c.percentile_us(50.0) as f64 / 1e3,
                c.percentile_us(95.0) as f64 / 1e3,
                c.percentile_us(99.0) as f64 / 1e3,
            ));
        }
        if let Some(server) = &self.server {
            out.push_str(&format!("  server metrics snapshot: {server}\n"));
        }
        out
    }
}

/// Distill the daemon's JSON metrics render into the loadgen record: the
/// request/saturation totals plus, per latency class, the histogram's
/// count, cumulative sum, and nearest-rank p99 upper bound (from
/// [`epre_telemetry::quantile_le`] over the fixed bucket ladder).
/// Returns a rendered JSON object fragment — integer-only, like the
/// exposition it is derived from.
fn distill_metrics(body: &str) -> Result<String, String> {
    let parsed = crate::json::parse(body).map_err(|e| format!("metrics json: {e}"))?;
    let metrics = parsed
        .get("metrics")
        .and_then(crate::json::Json::as_arr)
        .ok_or("metrics json: missing 'metrics' array")?;
    let counter = |name: &str| -> u64 {
        metrics
            .iter()
            .find(|m| m.get("name").and_then(crate::json::Json::as_str) == Some(name))
            .and_then(|m| m.get("value"))
            .and_then(crate::json::Json::as_u64)
            .unwrap_or(0)
    };
    let mut out = format!(
        "{{\"requests\":{},\"completed\":{},\"workers_saturated\":{},\"slow_requests\":{},\
         \"classes\":{{",
        counter("epre_requests_total"),
        counter("epre_completed_total"),
        counter("epre_workers_saturated_total"),
        counter("epre_slow_requests_total"),
    );
    let mut first = true;
    for m in metrics {
        if m.get("name").and_then(crate::json::Json::as_str) != Some("epre_request_latency_us") {
            continue;
        }
        let Some(label) = m.get("label").and_then(crate::json::Json::as_str) else { continue };
        let Some(class) = label.strip_prefix("class=") else { continue };
        let counts: Vec<u64> = m
            .get("counts")
            .and_then(crate::json::Json::as_arr)
            .map(|a| a.iter().filter_map(crate::json::Json::as_u64).collect())
            .unwrap_or_default();
        let bounds: Vec<u64> = m
            .get("bounds")
            .and_then(crate::json::Json::as_arr)
            .map(|a| a.iter().filter_map(crate::json::Json::as_u64).collect())
            .unwrap_or_default();
        let count = m.get("count").and_then(crate::json::Json::as_u64).unwrap_or(0);
        let sum = m.get("sum").and_then(crate::json::Json::as_u64).unwrap_or(0);
        let p99 = epre_telemetry::quantile_le(&bounds, &counts, 99, 100);
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{class}\":{{\"count\":{count},\"sum_us\":{sum},\"p99_us_le\":{}}}",
            p99.map_or_else(|| "null".to_string(), |v| v.to_string()),
        ));
    }
    out.push_str("}}");
    Ok(out)
}

/// A tiny module with a lexically redundant pair (so PRE has real work)
/// whose text is unique per `id` — unique text means a unique cache
/// key, which is what makes the cold class cold.
fn generated_module_text(id: u64) -> String {
    format!(
        "module data 0\n\
         function ldg{id}(r0:i) -> i\n\
         block b0:\n\
         \x20 r1 <- loadi {}:i\n\
         \x20 r2 <- add.i r0, r1\n\
         \x20 r3 <- add.i r0, r1\n\
         \x20 r4 <- mul.i r2, r3\n\
         \x20 ret r4\n\
         end\n",
        id % 9973 + 1
    )
}

/// Ground truth: the same hardened pipeline the server runs, in
/// process. The server was proven byte-identical to this in the core
/// tests; the load generator re-proves it under sustained concurrent
/// traffic, for every answer.
fn expected_text(module_text: &str) -> Result<String, String> {
    let module = parse_module(module_text).map_err(|e| format!("generated module: {e}"))?;
    let level = level_from_label(LEVEL).expect("the generator's level is servable");
    let harness = Harness::new(level, FaultPolicy::BestEffort);
    let out = harness.optimize(&module).map_err(|e| format!("ground truth: {e:?}"))?;
    Ok(format!("{}", out.module))
}

fn optimize_request(module_text: String, client: String) -> OptimizeRequest {
    OptimizeRequest {
        client,
        level: LEVEL.into(),
        policy: "best-effort".into(),
        deadline_ms: None,
        idempotency: String::new(),
        request: String::new(),
        module_text,
    }
}

/// One raw adversarial connection: send `bytes`, expect a typed error
/// frame back. Returns `Ok(true)` when the server answered typed,
/// `Ok(false)` when it answered with something else entirely (a wrong
/// answer), `Err` on transient transport failure.
fn adversarial_once(addr: &str, bytes: &[u8], timeout: Duration) -> Result<bool, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(timeout)).map_err(|e| format!("timeout: {e}"))?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| format!("timeout: {e}"))?;
    let mut w = BufWriter::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    w.write_all(bytes).map_err(|e| format!("send: {e}"))?;
    w.flush().map_err(|e| format!("send: {e}"))?;
    let mut r = BufReader::new(stream);
    match read_frame(&mut r) {
        Ok(Some(payload)) => match Response::decode(&payload) {
            // Any typed refusal is the right answer; which code depends
            // on whether admission shed the connection first.
            Ok(Response::Error { .. }) => Ok(true),
            Ok(_) => Ok(false),
            Err(e) => Err(format!("undecodable refusal: {e}")),
        },
        Ok(None) => Err("server closed without a typed refusal".into()),
        Err(e) => Err(format!("read: {e}")),
    }
}

/// The payload of one oversized-class operation: a frame header
/// claiming one byte more than the cap, followed by a token of body —
/// the server must refuse on the header alone, not buffer toward it.
fn oversized_bytes() -> Vec<u8> {
    format!("{}\nx", MAX_FRAME_BYTES + 1).into_bytes()
}

struct ThreadOutcome {
    samples: Vec<(usize, u64)>, // (class index, latency µs) of completed ops
    class_counts: [ClassStats; 4],
    reconnects: u64,
}

#[allow(clippy::needless_range_loop)]
fn client_thread(
    cfg: &LoadgenConfig,
    warm: &[(OptimizeRequest, String)],
    thread_idx: usize,
) -> ThreadOutcome {
    let mut rng = SplitMix64::new(cfg.seed ^ (thread_idx as u64).wrapping_mul(0x9E37_79B9));
    let mut session = Session::new(ClientConfig {
        addr: cfg.addr.clone(),
        attempts: 5,
        base_backoff: Duration::from_millis(10),
        seed: cfg.seed ^ thread_idx as u64,
        read_timeout: cfg.hang_threshold,
    });
    let weights =
        [cfg.mix_cold as u64, cfg.mix_warm as u64, cfg.mix_poison as u64, cfg.mix_oversized as u64];
    let total: u64 = weights.iter().sum();
    let mut stats: [ClassStats; 4] = Default::default();
    let mut samples = Vec::new();
    let mut cold_counter = (thread_idx as u64) << 32;
    let client = format!("loadgen-{thread_idx}");
    let deadline = Instant::now() + cfg.duration;
    while Instant::now() < deadline {
        let mut draw = rng.next_u64() % total.max(1);
        let mut class = 0;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                class = i;
                break;
            }
            draw -= w;
        }
        stats[class].ops += 1;
        let t0 = Instant::now();
        let outcome: Result<bool, String> = match class {
            0 => {
                cold_counter += 1;
                let text = generated_module_text(cold_counter);
                match session.submit(&optimize_request(text.clone(), client.clone())) {
                    Ok(out) => Ok(out.done.status == "clean"
                        && expected_text(&text).is_ok_and(|exp| exp == out.done.module_text)),
                    Err(e) => Err(format!("{e}")),
                }
            }
            1 => {
                let (req, expected) = &warm[(rng.next_u64() as usize) % warm.len()];
                match session.submit(req) {
                    Ok(out) => {
                        Ok(out.done.status == "clean" && &out.done.module_text == expected)
                    }
                    Err(e) => Err(format!("{e}")),
                }
            }
            2 => adversarial_once(&cfg.addr, b"%%% not a frame %%%\n", cfg.hang_threshold),
            _ => adversarial_once(&cfg.addr, &oversized_bytes(), cfg.hang_threshold),
        };
        let lat = t0.elapsed();
        match outcome {
            Ok(true) => {
                samples.push((class, lat.as_micros() as u64));
                if lat > cfg.hang_threshold {
                    stats[class].hangs += 1;
                }
            }
            Ok(false) => stats[class].wrongs += 1,
            Err(_) => {
                stats[class].failures += 1;
                if lat > cfg.hang_threshold {
                    stats[class].hangs += 1;
                }
            }
        }
    }
    ThreadOutcome { samples, class_counts: stats, reconnects: session.reconnects() }
}

/// Run the generator against a serving daemon at `cfg.addr`.
///
/// Primes the warm pool first (those submissions are not timed), then
/// unleashes `cfg.clients` threads for `cfg.duration`. Never panics on
/// server misbehavior — wrong answers, hangs, and failures come back as
/// counts in the report for the caller to judge.
///
/// # Errors
/// Setup only: ground-truth computation failing, or the warm pool
/// failing to prime (the server is unreachable or refusing).
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let cfg = LoadgenConfig { clients: cfg.clients.max(1), ..cfg.clone() };

    // Build and prime the warm pool. Priming uses a keep-alive session
    // of its own; its latencies are warm-up, not measurement.
    let mut warm = Vec::new();
    let mut primer = Session::new(ClientConfig {
        addr: cfg.addr.clone(),
        read_timeout: cfg.hang_threshold,
        ..Default::default()
    });
    for i in 0..cfg.warm_pool.max(1) as u64 {
        let text = generated_module_text(u64::MAX - i);
        let expected = expected_text(&text)?;
        let req = optimize_request(text, "loadgen-prime".into());
        let out = primer.submit(&req).map_err(|e| format!("priming the warm pool: {e}"))?;
        if out.done.module_text != expected {
            return Err(format!(
                "warm pool priming answered wrong for module {i} — refusing to measure a \
                 server that fails before load starts"
            ));
        }
        warm.push((req, expected));
    }
    drop(primer);

    let warm = Arc::new(warm);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|idx| {
            let cfg = cfg.clone();
            let warm = Arc::clone(&warm);
            std::thread::spawn(move || client_thread(&cfg, &warm, idx))
        })
        .collect();
    let outcomes: Vec<ThreadOutcome> =
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect();
    let duration_ms = t0.elapsed().as_millis() as u64;

    let mut classes: Vec<(String, ClassStats)> =
        CLASSES.iter().map(|n| ((*n).to_string(), ClassStats::default())).collect();
    let mut reconnects = 0;
    for o in outcomes {
        reconnects += o.reconnects;
        for (i, c) in o.class_counts.into_iter().enumerate() {
            classes[i].1.ops += c.ops;
            classes[i].1.wrongs += c.wrongs;
            classes[i].1.failures += c.failures;
            classes[i].1.hangs += c.hangs;
        }
        for (class, us) in o.samples {
            classes[class].1.latencies_us.push(us);
        }
    }
    for (_, c) in &mut classes {
        c.latencies_us.sort_unstable();
    }

    // The daemon's own view, scraped after the load stops. A failed
    // scrape fails the run: the operator asked for reconciliation, and
    // silence is not a reconciliation.
    let server = if cfg.metrics_snapshot {
        let body = crate::client::metrics(
            &ClientConfig {
                addr: cfg.addr.clone(),
                read_timeout: cfg.hang_threshold,
                ..Default::default()
            },
            "json",
        )
        .map_err(|e| format!("metrics snapshot: {e}"))?;
        Some(distill_metrics(&body)?)
    } else {
        None
    };
    Ok(LoadgenReport { clients: cfg.clients, duration_ms, classes, reconnects, server })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::core::{ServeConfig, ServerCore};
    use crate::server::serve_tcp;
    use std::net::TcpListener;

    fn spawn_server(config: ServeConfig) -> (String, Arc<ServerCore>, std::thread::JoinHandle<std::io::Result<()>>) {
        let core = Arc::new(ServerCore::new(config, ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };
        (addr, core, handle)
    }

    #[test]
    fn generated_modules_are_unique_and_have_ground_truth() {
        let a = generated_module_text(1);
        let b = generated_module_text(2);
        assert_ne!(a, b);
        let opt = expected_text(&a).unwrap();
        assert!(opt.contains("function ldg1"));
        // PRE removed the lexically redundant add: the optimized body
        // computes the sum once.
        assert!(a.matches("add.i").count() > opt.matches("add.i").count());
    }

    #[test]
    fn report_renders_text_and_json() {
        let mut cold = ClassStats { ops: 3, ..Default::default() };
        cold.latencies_us = vec![1000, 2000, 3000];
        let report = LoadgenReport {
            clients: 2,
            duration_ms: 1000,
            classes: vec![
                ("cold".into(), cold),
                ("warm".into(), ClassStats::default()),
            ],
            reconnects: 1,
            server: None,
        };
        assert_eq!(report.total_ops(), 3);
        assert_eq!(report.rps(), 3.0);
        let json = report.json_entry();
        assert!(json.starts_with("{\"loadgen\":true,"), "{json}");
        assert!(json.contains("\"cold\":{\"ops\":3,\"rps\":3.000,\"p50_ms\":2.000"), "{json}");
        assert!(json.contains("\"p95_ms\":3.000,\"p99_ms\":3.000"), "{json}");
        assert!(json.contains("\"wrong\":0,\"hangs\":0"), "{json}");
        let text = report.render_text();
        assert!(text.contains("cold"), "{text}");
        assert!(text.contains("p99ms"), "{text}");
    }

    #[test]
    fn metrics_distillation_reads_the_json_render() {
        // A minimal daemon render: one counter and one class histogram
        // over the real bucket ladder.
        let bounds: Vec<String> =
            epre_telemetry::LATENCY_BUCKETS_US.iter().map(|b| b.to_string()).collect();
        let mut counts = vec![0u64; bounds.len() + 1];
        counts[4] = 9; // nine observations in the 5th bucket
        counts[10] = 1; // one straggler higher up
        let body = format!(
            "{{\"metrics\":[\
             {{\"name\":\"epre_requests_total\",\"type\":\"counter\",\"value\":10}},\
             {{\"name\":\"epre_request_latency_us\",\"type\":\"histogram\",\
              \"label\":\"class=cold\",\"bounds\":[{}],\"counts\":[{}],\
              \"sum\":1234,\"count\":10}}]}}",
            bounds.join(","),
            counts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(","),
        );
        let fragment = distill_metrics(&body).unwrap();
        assert!(fragment.starts_with("{\"requests\":10,"), "{fragment}");
        let p99 = epre_telemetry::LATENCY_BUCKETS_US[10];
        assert!(
            fragment.contains(&format!(
                "\"cold\":{{\"count\":10,\"sum_us\":1234,\"p99_us_le\":{p99}}}"
            )),
            "{fragment}"
        );
        // And the fragment rides into the run entry.
        let report = LoadgenReport {
            clients: 1,
            duration_ms: 10,
            classes: vec![("cold".into(), ClassStats::default())],
            reconnects: 0,
            server: Some(fragment),
        };
        let json = report.json_entry();
        assert!(json.contains(",\"server\":{\"requests\":10,"), "{json}");
        assert!(json.ends_with("}}"), "{json}");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let c = ClassStats { latencies_us: (1..=100).collect(), ..Default::default() };
        assert_eq!(c.percentile_us(50.0), 51, "nearest rank on 0-indexed samples");
        assert_eq!(c.percentile_us(99.0), 99);
        assert_eq!(ClassStats::default().percentile_us(99.0), 0);
    }

    #[test]
    fn a_short_mixed_run_is_clean_and_the_daemon_survives() {
        let (addr, _core, handle) = spawn_server(ServeConfig {
            max_session_requests: 8, // force goaway rotation under load
            // Keep-alive sessions pin a worker for their lifetime; raw
            // poison/oversized connections need free workers beyond the
            // two persistent client sessions or they starve in the
            // admission queue.
            workers: 4,
            ..Default::default()
        });
        let cfg = LoadgenConfig {
            addr: addr.clone(),
            clients: 2,
            duration: Duration::from_millis(700),
            warm_pool: 2,
            metrics_snapshot: true,
            ..Default::default()
        };
        let report = run_loadgen(&cfg).unwrap();
        assert!(report.total_ops() > 0, "the run generated traffic");
        assert_eq!(report.wrongs(), 0, "zero wrong answers\n{}", report.render_text());
        assert_eq!(report.hangs(), 0, "zero hangs\n{}", report.render_text());
        assert_eq!(report.failures(), 0, "no transient failures expected in-process");
        let server = report.server.as_deref().expect("--metrics-snapshot scraped the daemon");
        assert!(server.starts_with("{\"requests\":"), "{server}");
        assert!(server.contains("\"cold\":{\"count\":"), "{server}");
        // The daemon survived the poison/oversized mix and still serves.
        let cfg = ClientConfig { addr, ..Default::default() };
        crate::client::ping(&cfg).unwrap();
        crate::client::shutdown(&cfg).unwrap();
        handle.join().unwrap().unwrap();
    }
}
