//! The persistent, content-addressed result cache — the journal
//! machinery wearing a different hat.
//!
//! Every entry maps a *cache key* (a 16-hex-digit FNV-1a fingerprint
//! over the optimization configuration line plus one function's input
//! text) to that function's optimized body. Entries are appended
//! write-ahead-journal style through [`epre_harness::JournalWriter`]: one
//! locked write+flush per insert, **before** the response frame that
//! advertises the result leaves the server. A `kill -9` therefore loses
//! at most the entry being written; on restart
//! [`epre_harness::load_journal`] tolerates the torn tail, drops
//! corrupt records by their output fingerprint, and [`ResultCache::open`]
//! compacts the file clean.
//!
//! ## Size cap, eviction, online compaction
//!
//! An uncapped cache keeps the original append-forever behavior
//! (compaction only at open). With a byte cap, the cache self-limits:
//!
//! - Every entry carries a **recency epoch** from a monotone logical
//!   clock; lookups touch it. The epoch is persisted per record (the
//!   journal's `at` line), so recency survives a restart.
//! - When live bytes exceed ⅞ of the cap, the least-recently-touched
//!   entries are **evicted** from memory until back under — the ⅛
//!   headroom keeps appends from re-triggering maintenance on every
//!   insert.
//! - Evicted entries still occupy dead journal bytes, so when the *file*
//!   outgrows the cap an **online compaction** rewrites it from the live
//!   map — staged beside the old file, fsynced, atomically renamed
//!   (see [`epre_harness::JournalWriter::rewrite`]). A `kill -9` at any
//!   instant during compaction leaves either the complete old file or
//!   the complete new file, never a hybrid.
//!
//! A cache entry is only ever *advisory*: bodies are fingerprint-
//! verified when the journal loads, re-parsed and name-checked on every
//! replay, and only ever inserted after passing the differential oracle
//! under the identical (config, input) key. A wrong cache entry degrades
//! to a miss and a fresh, oracle-checked run; it cannot change an
//! answer.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use epre_harness::{
    fingerprint64, load_journal, record_len, rewrite_staging_path, JournalEntry, JournalLoad,
    JournalWriter,
};

/// The cache file's header line. Versioned separately from the journal
/// magic: a cache written by an incompatible server version is discarded
/// wholesale, never misread.
pub const CACHE_HEADER: &str = "EPRE-SERVE-CACHE v1";

/// What [`ResultCache::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheRecovery {
    /// Entries recovered from the file.
    pub recovered: usize,
    /// The file carried a torn tail (the signature of a kill) that was
    /// discarded during compaction.
    pub resumed_torn: bool,
    /// Records dropped because their output fingerprint did not match
    /// their body (torn or bit-rotted mid-file).
    pub corrupt_dropped: usize,
    /// The file existed but carried an incompatible header and was
    /// discarded wholesale.
    pub discarded_incompatible: bool,
}

/// One resident entry: the body plus its LRU bookkeeping.
#[derive(Debug)]
struct CacheEntry {
    body: String,
    /// Logical time of the last touch (insert or lookup hit).
    epoch: u64,
    /// Exact on-disk record size at the current epoch.
    cost: u64,
}

/// Everything eviction and compaction must see atomically. One lock:
/// an insert's append, map update, eviction sweep, and (rarely) its
/// compaction happen as a unit, so a concurrent compaction can never
/// snapshot the map *before* an append it then renames away — which
/// would silently drop an already-advertised write-ahead record.
#[derive(Debug)]
struct CacheInner {
    entries: BTreeMap<String, CacheEntry>,
    /// Append-only writer; `None` for an in-memory cache.
    writer: Option<JournalWriter>,
    /// Header plus the exact record bytes of every *resident* entry —
    /// the file size a compaction right now would produce.
    live_bytes: u64,
    /// Next epoch to hand out; starts above every recovered epoch.
    clock: u64,
}

/// A persistent (or purely in-memory) content-addressed result cache,
/// optionally bounded by a byte cap with LRU-ish eviction and crash-safe
/// online compaction.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    /// Where the journal lives; `None` for an in-memory cache.
    path: Option<PathBuf>,
    /// The byte cap; `None` means unbounded (legacy behavior).
    max_bytes: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    compactions: AtomicU64,
    recovery: CacheRecovery,
}

/// Header line plus its newline — the fixed overhead of any journal file.
fn header_bytes() -> u64 {
    CACHE_HEADER.len() as u64 + 1
}

/// Eviction keeps live bytes at or under ⅞ of the cap, so the ⅛
/// headroom absorbs fresh appends without re-running maintenance on
/// every insert.
fn cap_target(cap: u64) -> u64 {
    cap - cap / 8
}

impl ResultCache {
    /// Open (or create) the cache file at `path`, replaying surviving
    /// entries and compacting away any torn tail. An incompatible or
    /// unreadable-as-a-journal file is discarded and recreated — a cache
    /// may always be rebuilt, so recovery never refuses to start.
    ///
    /// # Errors
    /// Real I/O errors only (open, read, rewrite).
    pub fn open(path: &Path) -> io::Result<ResultCache> {
        ResultCache::open_capped(path, None)
    }

    /// [`ResultCache::open`] with a byte cap. Recovered entries beyond
    /// the cap are evicted oldest-epoch-first before the startup
    /// compaction, so the file is within the cap from the first insert.
    ///
    /// # Errors
    /// Real I/O errors only (open, read, rewrite).
    pub fn open_capped(path: &Path, max_bytes: Option<u64>) -> io::Result<ResultCache> {
        // A stale staging sibling means a compaction died before its
        // rename: the file at `path` is authoritative, the sibling is
        // garbage. Clear it so it cannot accumulate.
        let _ = std::fs::remove_file(rewrite_staging_path(path));
        let mut recovery = CacheRecovery::default();
        let (writer, journal_entries) = match load_journal(path, CACHE_HEADER)? {
            JournalLoad::Fresh => (JournalWriter::create(path, CACHE_HEADER)?, BTreeMap::new()),
            JournalLoad::Mismatch { .. } => {
                recovery.discarded_incompatible = true;
                (JournalWriter::create(path, CACHE_HEADER)?, BTreeMap::new())
            }
            JournalLoad::Resumed(st) => {
                recovery.recovered = st.entries.len();
                recovery.resumed_torn = st.torn_tail;
                recovery.corrupt_dropped = st.corrupt_dropped;
                let w = JournalWriter::rewrite(path, CACHE_HEADER, &st.entries)?;
                (w, st.entries)
            }
        };
        let mut clock = 1;
        let mut live_bytes = header_bytes();
        let mut entries = BTreeMap::new();
        for (key, e) in journal_entries {
            clock = clock.max(e.epoch + 1);
            let cost = record_len(&key, e.epoch, &e.body);
            live_bytes += cost;
            entries.insert(key, CacheEntry { body: e.body, epoch: e.epoch, cost });
        }
        let mut cache = ResultCache {
            inner: Mutex::new(CacheInner {
                entries,
                writer: Some(writer),
                live_bytes,
                clock,
            }),
            path: Some(path.to_path_buf()),
            max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            recovery,
        };
        // A recovered file may exceed a newly-imposed (or tightened) cap:
        // evict down and compact the residue away immediately.
        if let Some(cap) = max_bytes {
            let inner = cache.inner.get_mut().expect("cache poisoned");
            let evicted = evict_to(inner, cap_target(cap));
            cache.evictions.fetch_add(evicted, Ordering::Relaxed);
            if inner.writer.as_ref().is_some_and(|w| w.bytes_written() > cap) {
                compact_locked(inner, path)?;
                cache.compactions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(cache)
    }

    /// A cache that lives only as long as the server (no file).
    pub fn in_memory() -> ResultCache {
        ResultCache::in_memory_capped(None)
    }

    /// An in-memory cache with a byte cap: eviction applies, compaction
    /// is moot (there is no file to grow).
    pub fn in_memory_capped(max_bytes: Option<u64>) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                entries: BTreeMap::new(),
                writer: None,
                live_bytes: header_bytes(),
                clock: 1,
            }),
            path: None,
            max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            recovery: CacheRecovery::default(),
        }
    }

    /// The content-addressed key: configuration line (level, policy,
    /// keyed budget — exactly the journal header line) plus one
    /// function's input text.
    pub fn key(config_line: &str, function_text: &str) -> String {
        format!("{:016x}", fingerprint64(&format!("{config_line}\n{function_text}")))
    }

    /// Look up a key, counting the hit or miss. A hit touches the
    /// entry's recency epoch (in memory; the refreshed epoch reaches
    /// disk at the next compaction or flush).
    pub fn lookup(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().expect("cache map poisoned");
        let clock = inner.clock;
        let touched = inner.entries.get_mut(key).map(|e| {
            e.epoch = clock;
            // The touch can change the record's `at`-line width; keep the
            // byte accounting exact.
            let new_cost = record_len(key, clock, &e.body);
            let delta = new_cost as i64 - e.cost as i64;
            e.cost = new_cost;
            (e.body.clone(), delta)
        });
        let found = touched.map(|(body, delta)| {
            inner.live_bytes = inner.live_bytes.checked_add_signed(delta).expect("cost underflow");
            inner.clock += 1;
            body
        });
        drop(inner);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert write-ahead: the entry is on disk (written and flushed)
    /// before this returns, so a crash after the caller's response frame
    /// can never lose a result the client already saw advertised. Under a
    /// byte cap the insert may evict least-recently-touched entries and,
    /// when the journal file itself outgrows the cap, trigger a
    /// crash-safe online compaction — all before returning.
    ///
    /// An entry that alone would not fit the cap is not cached at all
    /// (counted as an eviction): caching it would immediately evict
    /// everything else for a body that can never be retained.
    ///
    /// # Errors
    /// The journal append, or the compaction's staging write/rename.
    pub fn insert(&self, key: &str, body: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("cache map poisoned");
        let epoch = inner.clock;
        inner.clock += 1;
        let cost = record_len(key, epoch, body);
        if let Some(cap) = self.max_bytes {
            if header_bytes() + cost > cap_target(cap) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        if let Some(w) = &inner.writer {
            w.record_at(key, fingerprint64(body), epoch, body)?;
        }
        let old = inner
            .entries
            .insert(key.to_string(), CacheEntry { body: body.to_string(), epoch, cost });
        inner.live_bytes = inner.live_bytes + cost - old.map_or(0, |o| o.cost);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.max_bytes {
            let evicted = evict_to(&mut inner, cap_target(cap));
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            let file_over = inner.writer.as_ref().is_some_and(|w| w.bytes_written() > cap);
            if file_over {
                let path = self.path.as_deref().expect("writer implies path");
                compact_locked(&mut inner, path)?;
                self.compactions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Compact and fsync the journal — graceful drain's final act, which
    /// also persists every in-memory recency touch and upgrades the file
    /// from kill-durable to power-durable. A no-op for in-memory caches.
    ///
    /// # Errors
    /// The staging write, rename, or fsync.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("cache map poisoned");
        if inner.writer.is_none() {
            return Ok(());
        }
        let path = self.path.as_deref().expect("writer implies path");
        compact_locked(&mut inner, path)?;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        inner.writer.as_ref().expect("writer present").sync()
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries inserted by this process (excludes recovered ones).
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Entries evicted under the byte cap (including inserts refused
    /// because the entry alone would overflow it).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Online + drain compactions performed by this process (startup
    /// compaction at `open` is part of recovery, not counted here unless
    /// the cap forced an immediate re-compaction).
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Current journal file size in bytes (0 for in-memory caches) —
    /// tracked by the writer, not stat()ed.
    pub fn file_bytes(&self) -> u64 {
        let inner = self.inner.lock().expect("cache map poisoned");
        inner.writer.as_ref().map_or(0, JournalWriter::bytes_written)
    }

    /// Header plus exact record bytes of the resident entries — what the
    /// file would shrink to if compacted right now.
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().expect("cache map poisoned").live_bytes
    }

    /// The configured byte cap, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache map poisoned").entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// What `open` found on disk (all-zero for in-memory caches).
    pub fn recovery(&self) -> CacheRecovery {
        self.recovery
    }
}

/// Evict least-recently-touched entries until live bytes are at or under
/// `target`. Returns how many were evicted.
fn evict_to(inner: &mut CacheInner, target: u64) -> u64 {
    let mut evicted = 0;
    while inner.live_bytes > target {
        let Some(victim) = inner
            .entries
            .iter()
            .min_by_key(|(_, e)| e.epoch)
            .map(|(k, _)| k.clone())
        else {
            break;
        };
        let e = inner.entries.remove(&victim).expect("victim resident");
        inner.live_bytes -= e.cost;
        evicted += 1;
    }
    evicted
}

/// Rewrite the journal from the live map — staged, fsynced, renamed —
/// and swap the writer to the new file. The caller holds the inner lock,
/// so no append can land between the snapshot and the rename.
fn compact_locked(inner: &mut CacheInner, path: &Path) -> io::Result<()> {
    let snapshot: BTreeMap<String, JournalEntry> = inner
        .entries
        .iter()
        .map(|(k, e)| {
            (
                k.clone(),
                JournalEntry {
                    function: k.clone(),
                    input_fp: fingerprint64(&e.body),
                    epoch: e.epoch,
                    body: e.body.clone(),
                },
            )
        })
        .collect();
    let w = JournalWriter::rewrite(path, CACHE_HEADER, &snapshot)?;
    // The fresh file holds exactly the live records: re-anchor the byte
    // accounting on the writer's count to squeeze out any drift.
    inner.live_bytes = w.bytes_written();
    inner.writer = Some(w);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("epre-serve-cache-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn keys_separate_config_from_content() {
        let k1 = ResultCache::key("cfg-a", "function f\n");
        let k2 = ResultCache::key("cfg-b", "function f\n");
        let k3 = ResultCache::key("cfg-a", "function g\n");
        assert_ne!(k1, k2, "same function under a different config is a different key");
        assert_ne!(k1, k3);
        assert_eq!(k1, ResultCache::key("cfg-a", "function f\n"), "keys are stable");
        assert_eq!(k1.len(), 16);
    }

    #[test]
    fn in_memory_cache_counts_hits_and_misses() {
        let c = ResultCache::in_memory();
        assert_eq!(c.lookup("k"), None);
        c.insert("k", "body\n").unwrap();
        assert_eq!(c.lookup("k").as_deref(), Some("body\n"));
        assert_eq!((c.hits(), c.misses(), c.inserts(), c.len()), (1, 1, 1, 1));
        assert!(!c.is_empty());
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmp("persist");
        let _ = fs::remove_file(&path);
        {
            let c = ResultCache::open(&path).unwrap();
            c.insert("aaaa", "function f()\nbody\n").unwrap();
            c.insert("bbbb", "function g()\nbody\n").unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.recovery().recovered, 2);
        assert!(!c.recovery().resumed_torn);
        assert_eq!(c.lookup("aaaa").as_deref(), Some("function f()\nbody\n"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_compacted() {
        let path = tmp("torn");
        let _ = fs::remove_file(&path);
        {
            let c = ResultCache::open(&path).unwrap();
            c.insert("aaaa", "kept body\n").unwrap();
            c.insert("bbbb", "to be torn\n").unwrap();
        }
        // Tear the file mid-final-record, as a kill would.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.recovery().resumed_torn);
        assert_eq!(c.recovery().recovered, 1);
        assert_eq!(c.lookup("aaaa").as_deref(), Some("kept body\n"));
        assert_eq!(c.lookup("bbbb"), None, "the torn entry is gone");
        // Compaction rewrote the file clean: reopening sees no tear.
        drop(c);
        let c2 = ResultCache::open(&path).unwrap();
        assert!(!c2.recovery().resumed_torn);
        assert_eq!(c2.recovery().recovered, 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn incompatible_header_is_discarded_not_fatal() {
        let path = tmp("incompat");
        fs::write(&path, "SOME-OTHER-FORMAT v9\njunk\n").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.recovery().discarded_incompatible);
        assert_eq!(c.len(), 0);
        c.insert("aaaa", "body\n").unwrap();
        drop(c);
        let c2 = ResultCache::open(&path).unwrap();
        assert_eq!(c2.recovery().recovered, 1);
        assert!(!c2.recovery().discarded_incompatible);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn zero_length_cache_file_opens_fresh() {
        let path = tmp("zero");
        fs::write(&path, "").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.recovery(), CacheRecovery::default());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn eviction_prefers_least_recently_touched() {
        // Each record costs ~189 bytes (120-byte body); the 700-byte cap
        // holds three of them under its 613-byte eviction target. A
        // lookup touch must save an old entry while untouched peers die.
        let body_a = format!("a{}\n", "x".repeat(119));
        let body_fresh = format!("f{}\n", "x".repeat(119));
        let c = ResultCache::in_memory_capped(Some(700));
        c.insert("key-a", &body_a).unwrap();
        c.insert("key-b", &body_fresh).unwrap();
        c.insert("key-c", &body_fresh).unwrap();
        assert_eq!(c.lookup("key-a").as_deref(), Some(body_a.as_str()), "touch a");
        c.insert("key-d", &body_fresh).unwrap();
        c.insert("key-e", &body_fresh).unwrap();
        assert_eq!(c.evictions(), 2, "each filler insert evicts exactly one entry");
        assert!(
            c.lookup("key-b").is_none() && c.lookup("key-c").is_none(),
            "untouched oldest entries evicted first"
        );
        assert!(c.lookup("key-a").is_some(), "the touched entry survived");
        assert!(c.live_bytes() <= 700);
    }

    #[test]
    fn oversized_entry_is_refused_not_cached() {
        let c = ResultCache::in_memory_capped(Some(256));
        let huge = "x".repeat(512);
        c.insert("giant", &huge).unwrap();
        assert_eq!(c.lookup("giant"), None, "an entry that cannot fit is never resident");
        assert_eq!(c.evictions(), 1, "the refusal is counted");
        assert_eq!(c.inserts(), 0);
    }

    #[test]
    fn online_compaction_keeps_file_at_or_under_cap() {
        let path = tmp("online-compact");
        let _ = fs::remove_file(&path);
        let cap = 2048u64;
        let c = ResultCache::open_capped(&path, Some(cap)).unwrap();
        for i in 0..200 {
            c.insert(&format!("{i:016x}"), &format!("optimized body number {i}\n")).unwrap();
            assert!(
                c.file_bytes() <= cap,
                "file exceeded cap after insert {i}: {} > {cap}",
                c.file_bytes()
            );
            assert_eq!(fs::metadata(&path).unwrap().len(), c.file_bytes());
        }
        assert!(c.compactions() > 0, "sustained inserts must have compacted online");
        assert!(c.evictions() > 0);
        // The survivors are the most recent inserts, and a reopen agrees.
        let survivors = c.len();
        assert!(survivors > 0);
        drop(c);
        let c2 = ResultCache::open_capped(&path, Some(cap)).unwrap();
        assert_eq!(c2.len(), survivors);
        assert_eq!(c2.lookup("00000000000000c7").as_deref(), Some("optimized body number 199\n"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn recency_survives_restart_via_persisted_epochs() {
        let path = tmp("recency-restart");
        let _ = fs::remove_file(&path);
        let cap = 420u64;
        {
            let c = ResultCache::open_capped(&path, Some(cap)).unwrap();
            c.insert("key-old", "old body\n").unwrap();
            c.insert("key-mid", "mid body\n").unwrap();
            c.insert("key-hot", "hot body\n").unwrap();
            assert_eq!(c.lookup("key-old").as_deref(), Some("old body\n"), "touch old");
            // Persist the in-memory recency touches.
            c.flush().unwrap();
        }
        let c = ResultCache::open_capped(&path, Some(cap)).unwrap();
        // Evict one entry: the untouched key-mid must die before the
        // touched key-old, proving the epoch came back from disk.
        for i in 0..3 {
            c.insert(&format!("filler-{i}"), "filler body\n").unwrap();
        }
        assert!(c.evictions() > 0);
        assert!(c.lookup("key-old").is_some(), "touched entry survived the restart");
        assert!(c.lookup("key-mid").is_none(), "untouched entry evicted first");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn stale_compaction_staging_is_cleared_at_open() {
        let path = tmp("stale-staging");
        let _ = fs::remove_file(&path);
        {
            let c = ResultCache::open(&path).unwrap();
            c.insert("aaaa", "kept body\n").unwrap();
        }
        // Simulate a compaction killed between staging write and rename.
        let staging = epre_harness::rewrite_staging_path(&path);
        fs::write(&staging, "EPRE-SERVE-CACHE v1\ntorn half-written staging").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.recovery().recovered, 1, "the original file is authoritative");
        assert!(!staging.exists(), "stale staging sibling cleaned up");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flush_persists_and_fsyncs_without_data_loss() {
        let path = tmp("flush");
        let _ = fs::remove_file(&path);
        {
            let c = ResultCache::open(&path).unwrap();
            c.insert("aaaa", "body a\n").unwrap();
            c.insert("bbbb", "body b\n").unwrap();
            c.flush().unwrap();
            assert_eq!(c.compactions(), 1);
            assert_eq!(c.file_bytes(), c.live_bytes());
        }
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.recovery().recovered, 2);
        let _ = fs::remove_file(&path);
    }
}
