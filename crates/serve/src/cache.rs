//! The persistent, content-addressed result cache — the journal
//! machinery wearing a different hat.
//!
//! Every entry maps a *cache key* (a 16-hex-digit FNV-1a fingerprint
//! over the optimization configuration line plus one function's input
//! text) to that function's optimized body. Entries are appended
//! write-ahead-journal style through [`epre_harness::JournalWriter`]: one
//! locked write+flush per insert, **before** the response frame that
//! advertises the result leaves the server. A `kill -9` therefore loses
//! at most the entry being written; on restart
//! [`epre_harness::load_journal`] tolerates the torn tail, drops
//! corrupt records by their output fingerprint, and [`ResultCache::open`]
//! compacts the file clean.
//!
//! A cache entry is only ever *advisory*: bodies are fingerprint-
//! verified when the journal loads, re-parsed and name-checked on every
//! replay, and only ever inserted after passing the differential oracle
//! under the identical (config, input) key. A wrong cache entry degrades
//! to a miss and a fresh, oracle-checked run; it cannot change an
//! answer.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use epre_harness::{fingerprint64, load_journal, JournalLoad, JournalWriter};

/// The cache file's header line. Versioned separately from the journal
/// magic: a cache written by an incompatible server version is discarded
/// wholesale, never misread.
pub const CACHE_HEADER: &str = "EPRE-SERVE-CACHE v1";

/// What [`ResultCache::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheRecovery {
    /// Entries recovered from the file.
    pub recovered: usize,
    /// The file carried a torn tail (the signature of a kill) that was
    /// discarded during compaction.
    pub resumed_torn: bool,
    /// Records dropped because their output fingerprint did not match
    /// their body (torn or bit-rotted mid-file).
    pub corrupt_dropped: usize,
    /// The file existed but carried an incompatible header and was
    /// discarded wholesale.
    pub discarded_incompatible: bool,
}

/// A persistent (or purely in-memory) content-addressed result cache.
#[derive(Debug)]
pub struct ResultCache {
    /// Append-only writer; `None` for an in-memory cache.
    writer: Option<JournalWriter>,
    entries: Mutex<BTreeMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    recovery: CacheRecovery,
}

impl ResultCache {
    /// Open (or create) the cache file at `path`, replaying surviving
    /// entries and compacting away any torn tail. An incompatible or
    /// unreadable-as-a-journal file is discarded and recreated — a cache
    /// may always be rebuilt, so recovery never refuses to start.
    pub fn open(path: &Path) -> io::Result<ResultCache> {
        let mut recovery = CacheRecovery::default();
        let (writer, entries) = match load_journal(path, CACHE_HEADER)? {
            JournalLoad::Fresh => (JournalWriter::create(path, CACHE_HEADER)?, BTreeMap::new()),
            JournalLoad::Mismatch { .. } => {
                recovery.discarded_incompatible = true;
                (JournalWriter::create(path, CACHE_HEADER)?, BTreeMap::new())
            }
            JournalLoad::Resumed(st) => {
                recovery.recovered = st.entries.len();
                recovery.resumed_torn = st.torn_tail;
                recovery.corrupt_dropped = st.corrupt_dropped;
                let w = JournalWriter::rewrite(path, CACHE_HEADER, &st.entries)?;
                (w, st.entries)
            }
        };
        let entries = entries.into_values().map(|e| (e.function, e.body)).collect();
        Ok(ResultCache {
            writer: Some(writer),
            entries: Mutex::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            recovery,
        })
    }

    /// A cache that lives only as long as the server (no file).
    pub fn in_memory() -> ResultCache {
        ResultCache {
            writer: None,
            entries: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            recovery: CacheRecovery::default(),
        }
    }

    /// The content-addressed key: configuration line (level, policy,
    /// keyed budget — exactly the journal header line) plus one
    /// function's input text.
    pub fn key(config_line: &str, function_text: &str) -> String {
        format!("{:016x}", fingerprint64(&format!("{config_line}\n{function_text}")))
    }

    /// Look up a key, counting the hit or miss.
    pub fn lookup(&self, key: &str) -> Option<String> {
        let found = self.entries.lock().expect("cache map poisoned").get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert write-ahead: the entry is on disk (written and flushed)
    /// before this returns, so a crash after the caller's response frame
    /// can never lose a result the client already saw advertised.
    pub fn insert(&self, key: &str, body: &str) -> io::Result<()> {
        if let Some(w) = &self.writer {
            w.record(key, fingerprint64(body), body)?;
        }
        self.entries.lock().expect("cache map poisoned").insert(key.to_string(), body.to_string());
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries inserted by this process (excludes recovered ones).
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache map poisoned").len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// What `open` found on disk (all-zero for in-memory caches).
    pub fn recovery(&self) -> CacheRecovery {
        self.recovery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("epre-serve-cache-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn keys_separate_config_from_content() {
        let k1 = ResultCache::key("cfg-a", "function f\n");
        let k2 = ResultCache::key("cfg-b", "function f\n");
        let k3 = ResultCache::key("cfg-a", "function g\n");
        assert_ne!(k1, k2, "same function under a different config is a different key");
        assert_ne!(k1, k3);
        assert_eq!(k1, ResultCache::key("cfg-a", "function f\n"), "keys are stable");
        assert_eq!(k1.len(), 16);
    }

    #[test]
    fn in_memory_cache_counts_hits_and_misses() {
        let c = ResultCache::in_memory();
        assert_eq!(c.lookup("k"), None);
        c.insert("k", "body\n").unwrap();
        assert_eq!(c.lookup("k").as_deref(), Some("body\n"));
        assert_eq!((c.hits(), c.misses(), c.inserts(), c.len()), (1, 1, 1, 1));
        assert!(!c.is_empty());
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmp("persist");
        let _ = fs::remove_file(&path);
        {
            let c = ResultCache::open(&path).unwrap();
            c.insert("aaaa", "function f()\nbody\n").unwrap();
            c.insert("bbbb", "function g()\nbody\n").unwrap();
        }
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.recovery().recovered, 2);
        assert!(!c.recovery().resumed_torn);
        assert_eq!(c.lookup("aaaa").as_deref(), Some("function f()\nbody\n"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_compacted() {
        let path = tmp("torn");
        let _ = fs::remove_file(&path);
        {
            let c = ResultCache::open(&path).unwrap();
            c.insert("aaaa", "kept body\n").unwrap();
            c.insert("bbbb", "to be torn\n").unwrap();
        }
        // Tear the file mid-final-record, as a kill would.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.recovery().resumed_torn);
        assert_eq!(c.recovery().recovered, 1);
        assert_eq!(c.lookup("aaaa").as_deref(), Some("kept body\n"));
        assert_eq!(c.lookup("bbbb"), None, "the torn entry is gone");
        // Compaction rewrote the file clean: reopening sees no tear.
        drop(c);
        let c2 = ResultCache::open(&path).unwrap();
        assert!(!c2.recovery().resumed_torn);
        assert_eq!(c2.recovery().recovered, 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn incompatible_header_is_discarded_not_fatal() {
        let path = tmp("incompat");
        fs::write(&path, "SOME-OTHER-FORMAT v9\njunk\n").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.recovery().discarded_incompatible);
        assert_eq!(c.len(), 0);
        c.insert("aaaa", "body\n").unwrap();
        drop(c);
        let c2 = ResultCache::open(&path).unwrap();
        assert_eq!(c2.recovery().recovered, 1);
        assert!(!c2.recovery().discarded_incompatible);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn zero_length_cache_file_opens_fresh() {
        let path = tmp("zero");
        fs::write(&path, "").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.recovery(), CacheRecovery::default());
        let _ = fs::remove_file(&path);
    }
}
