//! A minimal JSON value, writer, and parser — just enough for the serve
//! protocol, with zero dependencies.
//!
//! Deliberately narrower than full JSON where the protocol never needs
//! the width: numbers are unsigned 64-bit integers (every numeric field
//! in the protocol is a count, a port, or a millisecond quantity), and
//! object keys are kept in insertion order so encodings are
//! deterministic. The parser accepts any standard JSON document built
//! from those shapes and rejects the rest with a positioned error.

use std::fmt;

/// A JSON value restricted to the protocol's shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number shape the protocol uses).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys rejected at parse.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object (`None` for other shapes).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact single-line JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A convenience constructor for object literals.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("expected 'null'"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.err("expected 'true'"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("expected 'false'"))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character (negative and float numbers are \
                                     outside the protocol's JSON subset)")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("float numbers are outside the protocol's JSON subset"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if text.len() > 1 && text.starts_with('0') {
            return Err(self.err("numbers may not have leading zeros"));
        }
        text.parse::<u64>().map(Json::U64).map_err(|_| self.err("integer out of u64 range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: the protocol escapes only
                            // control characters, but a conforming client
                            // may send any string.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // step off the high escape's last digit
                                if !self.eat("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos -= 1; // hex4 wants pos on the 'u'
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits of a `\uXXXX` escape. On entry `pos` is on
    /// the `u`; on exit it is on the final hex digit (the caller's shared
    /// `pos += 1` then steps past it).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            cp = (cp << 4) | d;
        }
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() {
        let v = obj(vec![
            ("kind", Json::Str("optimize".into())),
            ("deadline_ms", Json::U64(5000)),
            ("stream", Json::Bool(true)),
            ("nothing", Json::Null),
            ("frames", Json::Arr(vec![Json::U64(1), Json::Str("x".into())])),
        ]);
        let text = v.encode();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(
            text,
            r#"{"kind":"optimize","deadline_ms":5000,"stream":true,"nothing":null,"frames":[1,"x"]}"#
        );
    }

    #[test]
    fn escapes_and_unescapes_module_text() {
        let module = "function tri(n)\n\tinteger n\nbegin\nreturn n \"quoted\" \\ end\n";
        let v = Json::Str(module.to_string());
        let parsed = parse(&v.encode()).unwrap();
        assert_eq!(parsed.as_str(), Some(module));
    }

    #[test]
    fn parses_unicode_escapes_including_surrogate_pairs() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate is rejected");
    }

    #[test]
    fn rejects_out_of_subset_documents() {
        for bad in ["-1", "1.5", "1e3", "01", "{\"a\":1,\"a\":2}", "[1,]", "\"\u{1}\"", "x", "{\"a\" 1}", "[1 2]", "\"abc", "18446744073709551616"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Unescaped raw control characters are rejected too.
        assert!(parse("\"a\u{2}b\"").is_err());
    }

    #[test]
    fn accessors_are_typed() {
        let v = parse(r#"{"n":3,"s":"x","b":false,"a":[]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Json::as_arr), Some(&[][..]));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("n").and_then(Json::as_str), None);
    }

    #[test]
    fn big_u64_roundtrips() {
        let v = Json::U64(u64::MAX);
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }
}
