//! # epre-serve — the crash-safe optimization daemon
//!
//! A long-lived server around the hardened optimizer of
//! [`epre_harness`]: clients submit ILOC modules with an optimization
//! contract (level, fault policy, deadline) over a length-prefixed
//! JSONL protocol, and get back per-function progress plus a terminal
//! accounting frame — always a *typed* answer, never a hang.
//!
//! The layers, bottom-up:
//!
//! * [`json`] — a zero-dependency JSON subset codec,
//! * [`protocol`] — `<len>\n<json>\n` framing, typed requests,
//!   responses, and refusal codes,
//! * [`cache`] — a persistent content-addressed result cache riding the
//!   write-ahead journal machinery: `kill -9` loses at most the entry
//!   being written, restart compacts the torn tail,
//! * [`core`] — the transport-independent engine: quarantine gate →
//!   parse → deadline admission → cache partition → governed pipeline →
//!   whole-module differential oracle → write-ahead insert → frames,
//! * [`server`] — TCP accept loop with a bounded admission queue
//!   (overflow is shed with a typed `overloaded` frame), keep-alive
//!   sessions ended by typed `goaway` frames (idle timeout, request
//!   cap, draining), a graceful drain with a deadline, and a
//!   stdio-JSONL mode,
//! * [`client`] — a retrying client with jittered exponential backoff,
//!   content-derived idempotency keys, and a keep-alive [`Session`]
//!   that reconnects transparently,
//! * [`events`] — the daemon's accounting as standard telemetry events,
//! * [`metrics`] — the live-metrics wiring: per-class request latency
//!   histograms, queue/worker gauges, per-pass cumulative pipeline time
//!   via a transparent timing decorator, all rendered through
//!   [`epre_telemetry::MetricsRegistry`] as Prometheus text or JSON,
//! * [`recorder`] — the always-on flight recorder: a bounded ring of
//!   recent request summaries and daemon events dumped as JSONL on
//!   SIGQUIT, at drain, and (per request) past the `--slow-ms`
//!   threshold,
//! * [`loadgen`] — a mixed-workload load generator (cold, warm, poison,
//!   oversized, keep-alive) that checks every answer against ground
//!   truth and reports per-class latency percentiles.
//!
//! The soundness invariant is inherited, not re-proven: every freshly
//! optimized function passes through [`Harness::finish_with_oracle`]
//! before it is answered or cached, and every cache replay is
//! fingerprint-verified, re-parsed, and name-checked against a body
//! that already passed that oracle under the identical key — so
//! corruption anywhere (disk, cache, chaos pass) degrades performance
//! or accounting, never answers.
//!
//! ```
//! use std::sync::Arc;
//! use epre_serve::cache::ResultCache;
//! use epre_serve::client::{submit, ClientConfig};
//! use epre_serve::core::{ServeConfig, ServerCore};
//! use epre_serve::protocol::OptimizeRequest;
//! use epre_serve::server::serve_tcp;
//!
//! let core = Arc::new(ServerCore::new(ServeConfig::default(), ResultCache::in_memory()));
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let handle = std::thread::spawn(move || serve_tcp(core, listener));
//!
//! let src = "function foo(y, z)\nreal y, z, x\nbegin\nx = y + z\nreturn x * x\nend\n";
//! let module = epre_frontend::compile(src, epre_frontend::NamingMode::Disciplined).unwrap();
//! let outcome = submit(
//!     &ClientConfig { addr: addr.to_string(), ..Default::default() },
//!     &OptimizeRequest {
//!         client: "docs".into(),
//!         level: "distribution".into(),
//!         policy: "best-effort".into(),
//!         deadline_ms: Some(30_000),
//!         idempotency: String::new(),
//!         request: String::new(),
//!         module_text: format!("{module}"),
//!     },
//! )
//! .unwrap();
//! assert_eq!(outcome.done.status, "clean");
//! epre_serve::client::shutdown(&ClientConfig { addr: addr.to_string(), ..Default::default() })
//!     .unwrap();
//! handle.join().unwrap().unwrap();
//! ```
//!
//! [`Harness::finish_with_oracle`]: epre_harness::Harness::finish_with_oracle

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod core;
pub mod events;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod recorder;
pub mod server;

pub use cache::{CacheRecovery, ResultCache, CACHE_HEADER};
pub use client::{
    ping, shutdown, stats, submit, ClientConfig, ClientError, Session, SubmitOutcome,
};
pub use core::{level_from_label, policy_from_label, GoawayReason, ServeConfig, ServerCore};
pub use events::{
    drain_event, goaway_event, recover_event, request_event, shed_event, DrainAccounting,
    RequestAccounting,
};
pub use loadgen::{run_loadgen, ClassStats, LoadgenConfig, LoadgenReport};
pub use metrics::{ServeMetrics, REQUEST_CLASSES};
pub use protocol::{
    read_frame, write_frame, DoneFrame, ErrorCode, FrameError, FunctionFrame, OptimizeRequest,
    Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use recorder::{FlightRecorder, RequestSummary};
pub use server::{serve_metrics_http, serve_stdio, serve_tcp, READ_TIMEOUT};
