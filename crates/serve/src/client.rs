//! The client library: submit a module, survive a flaky server.
//!
//! [`submit`] wraps one request/response conversation in a retry loop
//! with jittered exponential backoff. Retryable failures are exactly
//! the transient ones — connection refused/reset, a torn response
//! stream (the signature of a server killed mid-write), and a typed
//! `overloaded` refusal. Deterministic refusals (`parse`, `protocol`,
//! `quarantined`, `deadline`) are surfaced immediately: retrying a
//! request the server has *decided* about just re-earns the answer.
//!
//! Idempotency rides on content addressing: [`submit`] fills an empty
//! idempotency key with [`OptimizeRequest::idempotency_key`], the
//! 16-hex fingerprint of everything that affects the answer. A retry
//! therefore names the same work, the server's result cache recognizes
//! it, and the answer comes back byte-identical — at cache speed.
//!
//! [`Session`] is the keep-alive counterpart: one connection carries
//! many submissions, and when the server ends the session with a typed
//! `goaway` (idle timeout, per-session request cap, draining) the
//! session reconnects transparently and resends — without a backoff
//! sleep, because session rotation is housekeeping, not failure. The
//! same idempotency keys make the resend safe: at worst the server
//! answers from its cache.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use epre_harness::SplitMix64;

use crate::protocol::{
    read_frame, write_frame, DoneFrame, ErrorCode, FrameError, FunctionFrame, OptimizeRequest,
    Request, Response,
};

/// Client knobs. `Default` suits tests; real callers set `addr`.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Total attempts (first try + retries).
    pub attempts: u32,
    /// Base backoff; attempt `k` sleeps `base * 2^k` plus jitter.
    pub base_backoff: Duration,
    /// Jitter seed. Equal seeds replay equal backoff schedules — chaos
    /// campaigns are reproducible.
    pub seed: u64,
    /// Per-read socket timeout; a dead-but-connected server surfaces as
    /// a retryable I/O error after this long, never a hang.
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:9944".into(),
            attempts: 4,
            base_backoff: Duration::from_millis(50),
            seed: 0x5EED,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Why a submission gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The server refused deterministically; retrying cannot help.
    Refused {
        /// The typed refusal.
        code: ErrorCode,
        /// The server's explanation.
        message: String,
    },
    /// Every attempt failed transiently (connect, torn stream,
    /// overload). The last failure is described.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the final failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Refused { code, message } => {
                write!(f, "server refused ({}): {message}", code.label())
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

/// A successful submission: the terminal frame plus everything before it.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The terminal accounting frame.
    pub done: DoneFrame,
    /// Per-function progress frames, in module order.
    pub functions: Vec<FunctionFrame>,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// Submit one optimize request, retrying transient failures with
/// jittered exponential backoff. An empty request id is filled the same
/// way as the idempotency key — content-derived, so a retry carries the
/// same trace id and the whole conversation is correlatable end to end.
pub fn submit(cfg: &ClientConfig, req: &OptimizeRequest) -> Result<SubmitOutcome, ClientError> {
    let mut req = req.clone();
    if req.idempotency.is_empty() {
        req.idempotency = req.idempotency_key();
    }
    if req.request.is_empty() {
        req.request = req.request_id();
    }
    let mut rng = SplitMix64::new(cfg.seed);
    let mut last = String::from("no attempts were made");
    let attempts = cfg.attempts.max(1);
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(cfg.base_backoff, attempt - 1, &mut rng));
        }
        match try_once(cfg, &Request::Optimize(req.clone())) {
            Ok(frames) => match split_terminal(frames) {
                Ok((done, functions)) => {
                    return Ok(SubmitOutcome { done, functions, attempts: attempt + 1 })
                }
                Err(RefusalOrRetry::Refuse(code, message)) => {
                    return Err(ClientError::Refused { code, message })
                }
                Err(RefusalOrRetry::Retry(why)) => last = why,
            },
            Err(why) => last = why,
        }
    }
    Err(ClientError::Exhausted { attempts, last })
}

/// Ask the server for its counter snapshot (no retries — stats are a
/// diagnostic, absence of an answer is itself the diagnosis).
pub fn stats(cfg: &ClientConfig) -> Result<Vec<(String, u64)>, String> {
    let frames = try_once(cfg, &Request::Stats)?;
    match frames.into_iter().next() {
        Some(Response::Stats(counters)) => Ok(counters),
        other => Err(format!("expected a stats frame, got {other:?}")),
    }
}

/// Scrape the server's live metrics. `format` is `"text"` (Prometheus
/// exposition) or `"json"`; like [`stats`], no retries — a metrics
/// scrape that fails IS the signal.
pub fn metrics(cfg: &ClientConfig, format: &str) -> Result<String, String> {
    let frames = try_once(cfg, &Request::Metrics { format: format.to_string() })?;
    match frames.into_iter().next() {
        Some(Response::Metrics { body }) => Ok(body),
        other => Err(format!("expected a metrics frame, got {other:?}")),
    }
}

/// Ask the server to shut down. `Ok` means it acknowledged.
pub fn shutdown(cfg: &ClientConfig) -> Result<(), String> {
    let frames = try_once(cfg, &Request::Shutdown)?;
    match frames.into_iter().next() {
        Some(Response::Ack { what }) if what == "shutdown" => Ok(()),
        other => Err(format!("expected a shutdown ack, got {other:?}")),
    }
}

/// Liveness probe.
pub fn ping(cfg: &ClientConfig) -> Result<(), String> {
    let frames = try_once(cfg, &Request::Ping)?;
    match frames.into_iter().next() {
        Some(Response::Ack { what }) if what == "pong" => Ok(()),
        other => Err(format!("expected a pong, got {other:?}")),
    }
}

/// Backoff for retry `k` (0-based): `base * 2^k + jitter`, jitter
/// uniform in `[0, base)`. Exposed for tests.
pub fn backoff_delay(base: Duration, k: u32, rng: &mut SplitMix64) -> Duration {
    let base_ms = base.as_millis() as u64;
    let exp = base_ms.saturating_mul(1u64 << k.min(16));
    let jitter = if base_ms == 0 { 0 } else { rng.next_u64() % base_ms };
    Duration::from_millis(exp.saturating_add(jitter))
}

enum RefusalOrRetry {
    Refuse(ErrorCode, String),
    Retry(String),
}

/// Split a frame stream into (terminal done, progress frames), or
/// classify the failure.
fn split_terminal(frames: Vec<Response>) -> Result<(DoneFrame, Vec<FunctionFrame>), RefusalOrRetry> {
    let mut functions = Vec::new();
    for frame in frames {
        match frame {
            Response::Function(f) => functions.push(f),
            Response::Done(done) => return Ok((done, functions)),
            Response::Error { code, message, .. } => {
                return Err(if code.retryable() {
                    RefusalOrRetry::Retry(format!("server shed the request: {message}"))
                } else {
                    RefusalOrRetry::Refuse(code, message)
                })
            }
            Response::Goaway { reason } => {
                // The server ended the session instead of answering
                // (draining, most likely). Reconnecting is the cure.
                return Err(RefusalOrRetry::Retry(format!("server ended the session: {reason}")))
            }
            other => {
                return Err(RefusalOrRetry::Retry(format!(
                    "unexpected frame in an optimize conversation: {other:?}"
                )))
            }
        }
    }
    // The stream ended without a terminal frame: the server died at a
    // frame boundary. Same as a torn frame — retry.
    Err(RefusalOrRetry::Retry("response stream ended without a terminal frame".into()))
}

/// One connection, one request, all frames until clean EOF. Any I/O or
/// framing failure is returned as a retryable description.
fn try_once(cfg: &ClientConfig, req: &Request) -> Result<Vec<Response>, String> {
    let stream =
        TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    let _ = stream.set_nodelay(true); // small flushed frames; avoid Nagle stalls
    stream.set_read_timeout(Some(cfg.read_timeout)).map_err(|e| format!("timeout: {e}"))?;
    let write_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut writer = BufWriter::new(write_half);
    write_frame(&mut writer, &req.encode()).map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut reader) {
            Ok(Some(payload)) => {
                let resp = Response::decode(&payload)
                    .map_err(|e| format!("undecodable response frame: {e}"))?;
                let terminal = resp.is_terminal();
                frames.push(resp);
                if terminal {
                    return Ok(frames);
                }
            }
            Ok(None) => return Ok(frames), // clean EOF; caller classifies
            Err(FrameError::Torn) => {
                return Err("response stream torn mid-frame (server died?)".into())
            }
            Err(FrameError::Io(e)) => return Err(format!("read: {e}")),
            Err(FrameError::Malformed(m)) => return Err(format!("malformed response: {m}")),
        }
    }
}

/// A keep-alive client session: one connection answers many
/// submissions. When the server ends the session with a `goaway`, the
/// stream tears, or the connection drops, the session reconnects and
/// resends transparently (idempotency keys make the resend safe). Not
/// `Sync` — one session per thread, which is how load generators and
/// build drivers naturally hold them.
pub struct Session {
    cfg: ClientConfig,
    conn: Option<SessionConn>,
    rng: SplitMix64,
    connected_once: bool,
    reconnects: u64,
}

struct SessionConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Why one session round-trip failed (internal).
struct SessionFailure {
    why: String,
    /// True when the server ended the session with a typed `goaway` —
    /// an orderly rotation, retried immediately without backoff.
    goaway: bool,
}

impl SessionFailure {
    fn transient(why: String) -> SessionFailure {
        SessionFailure { why, goaway: false }
    }
}

impl Session {
    /// A lazy session: the first [`Session::submit`] connects.
    pub fn new(cfg: ClientConfig) -> Session {
        let rng = SplitMix64::new(cfg.seed);
        Session { cfg, conn: None, rng, connected_once: false, reconnects: 0 }
    }

    /// Connections made beyond the first — each one is a transparent
    /// recovery from a `goaway`, a torn stream, or a dropped peer.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Submit one optimize request over the session, reconnecting and
    /// retrying transient failures. Semantics match [`submit`]: only
    /// deterministic refusals surface as [`ClientError::Refused`].
    pub fn submit(&mut self, req: &OptimizeRequest) -> Result<SubmitOutcome, ClientError> {
        let mut req = req.clone();
        if req.idempotency.is_empty() {
            req.idempotency = req.idempotency_key();
        }
        if req.request.is_empty() {
            req.request = req.request_id();
        }
        let request = Request::Optimize(req);
        let attempts = self.cfg.attempts.max(1);
        let mut last = String::from("no attempts were made");
        let mut backoff_next = false;
        for attempt in 0..attempts {
            if attempt > 0 && backoff_next {
                std::thread::sleep(backoff_delay(self.cfg.base_backoff, attempt - 1, &mut self.rng));
            }
            backoff_next = true;
            match self.roundtrip(&request) {
                Ok(frames) => match split_terminal(frames) {
                    Ok((done, functions)) => {
                        return Ok(SubmitOutcome { done, functions, attempts: attempt + 1 })
                    }
                    Err(RefusalOrRetry::Refuse(code, message)) => {
                        return Err(ClientError::Refused { code, message })
                    }
                    Err(RefusalOrRetry::Retry(why)) => {
                        // A shed (overloaded) answer closes the server
                        // side; start the next attempt on a fresh
                        // connection either way.
                        self.conn = None;
                        last = why;
                    }
                },
                Err(fail) => {
                    self.conn = None;
                    backoff_next = !fail.goaway;
                    last = fail.why;
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// Send one request on the (re)established connection and read
    /// frames up to the terminal one. A `goaway` anywhere — including a
    /// stale one buffered from the previous exchange — fails the
    /// round-trip with `goaway: true` so the caller rotates without
    /// backoff.
    fn roundtrip(&mut self, req: &Request) -> Result<Vec<Response>, SessionFailure> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.cfg.addr)
                .map_err(|e| SessionFailure::transient(format!("connect {}: {e}", self.cfg.addr)))?;
            let _ = stream.set_nodelay(true); // small flushed frames; avoid Nagle stalls
            stream
                .set_read_timeout(Some(self.cfg.read_timeout))
                .map_err(|e| SessionFailure::transient(format!("timeout: {e}")))?;
            let write_half = stream
                .try_clone()
                .map_err(|e| SessionFailure::transient(format!("clone: {e}")))?;
            if self.connected_once {
                self.reconnects += 1;
            }
            self.connected_once = true;
            self.conn = Some(SessionConn {
                reader: BufReader::new(stream),
                writer: BufWriter::new(write_half),
            });
        }
        let conn = self.conn.as_mut().expect("connection just established");
        write_frame(&mut conn.writer, &req.encode())
            .map_err(|e| SessionFailure::transient(format!("send: {e}")))?;
        let mut frames = Vec::new();
        loop {
            match read_frame(&mut conn.reader) {
                Ok(Some(payload)) => {
                    let resp = Response::decode(&payload).map_err(|e| {
                        SessionFailure::transient(format!("undecodable response frame: {e}"))
                    })?;
                    if let Response::Goaway { reason } = &resp {
                        return Err(SessionFailure {
                            why: format!("server ended the session: {reason}"),
                            goaway: true,
                        });
                    }
                    let terminal = resp.is_terminal();
                    frames.push(resp);
                    if terminal {
                        return Ok(frames);
                    }
                }
                Ok(None) => {
                    return Err(SessionFailure::transient(
                        "server closed the session before a terminal frame".into(),
                    ))
                }
                Err(FrameError::Torn) => {
                    return Err(SessionFailure::transient(
                        "response stream torn mid-frame (server died?)".into(),
                    ))
                }
                Err(FrameError::Io(e)) => {
                    return Err(SessionFailure::transient(format!("read: {e}")))
                }
                Err(FrameError::Malformed(m)) => {
                    return Err(SessionFailure::transient(format!("malformed response: {m}")))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::core::{ServeConfig, ServerCore};
    use crate::server::serve_tcp;
    use epre_frontend::{compile, NamingMode};
    use std::net::TcpListener;
    use std::sync::Arc;

    const SRC: &str = "function dbl(a)\n\
                       integer a\n\
                       begin\n\
                       return a + a\nend\n";

    fn optimize_request() -> OptimizeRequest {
        OptimizeRequest {
            client: "client-test".into(),
            level: "partial".into(),
            policy: "best-effort".into(),
            deadline_ms: None,
            idempotency: String::new(),
            request: String::new(),
            module_text: format!("{}", compile(SRC, NamingMode::Disciplined).unwrap()),
        }
    }

    fn spawn_server_with(
        config: ServeConfig,
    ) -> (ClientConfig, std::thread::JoinHandle<std::io::Result<()>>) {
        let core = Arc::new(ServerCore::new(config, ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp(core, listener));
        let cfg = ClientConfig { addr: addr.to_string(), ..Default::default() };
        (cfg, handle)
    }

    fn spawn_server() -> (ClientConfig, std::thread::JoinHandle<std::io::Result<()>>) {
        spawn_server_with(ServeConfig::default())
    }

    #[test]
    fn submits_pings_and_shuts_down() {
        let (cfg, server) = spawn_server();
        ping(&cfg).unwrap();
        let first = submit(&cfg, &optimize_request()).unwrap();
        assert_eq!(first.attempts, 1);
        assert_eq!(first.done.status, "clean");
        assert_eq!(first.functions.len(), 1);
        // Identical resubmit: cache speed, byte-identical, same key.
        let second = submit(&cfg, &optimize_request()).unwrap();
        assert_eq!(second.done.module_text, first.done.module_text);
        assert_eq!(second.done.idempotency, first.done.idempotency);
        assert_eq!(second.done.reused, 1);
        let counters = stats(&cfg).unwrap();
        let get = |k: &str| counters.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("completed"), 2);
        assert_eq!(get("cache_hits"), 1);
        shutdown(&cfg).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn connect_failures_exhaust_with_backoff_not_hang() {
        // Nothing listens here: every attempt fails at connect.
        let cfg = ClientConfig {
            addr: "127.0.0.1:1".into(),
            attempts: 3,
            base_backoff: Duration::from_millis(1),
            ..Default::default()
        };
        match submit(&cfg, &optimize_request()) {
            Err(ClientError::Exhausted { attempts: 3, last }) => {
                assert!(last.contains("connect"), "{last}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_refusals_do_not_retry() {
        let (cfg, server) = spawn_server();
        let mut req = optimize_request();
        req.module_text = "garbage".into();
        match submit(&cfg, &req) {
            Err(ClientError::Refused { code: ErrorCode::Parse, .. }) => {}
            other => panic!("expected a parse refusal, got {other:?}"),
        }
        shutdown(&cfg).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn session_reuses_one_connection_across_submits() {
        let (cfg, server) = spawn_server();
        let mut session = Session::new(cfg.clone());
        let first = session.submit(&optimize_request()).unwrap();
        assert_eq!(first.done.status, "clean");
        for _ in 0..3 {
            let again = session.submit(&optimize_request()).unwrap();
            assert_eq!(again.done.module_text, first.done.module_text);
            assert_eq!(again.done.reused, 1, "warm hits ride the same session");
        }
        assert_eq!(session.reconnects(), 0, "four submits, one connection");
        drop(session);
        shutdown(&cfg).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn session_rotates_transparently_on_goaway_max_requests() {
        let config = ServeConfig { max_session_requests: 2, ..Default::default() };
        let (cfg, server) = spawn_server_with(config);
        let mut session = Session::new(cfg.clone());
        for _ in 0..5 {
            let out = session.submit(&optimize_request()).unwrap();
            assert_eq!(out.done.status, "clean");
        }
        assert!(
            session.reconnects() >= 1,
            "a 2-request session cap forces rotation across 5 submits"
        );
        drop(session);
        shutdown(&cfg).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn session_reconnects_after_idle_timeout() {
        let config =
            ServeConfig { idle_timeout: Duration::from_millis(100), ..Default::default() };
        let (cfg, server) = spawn_server_with(config);
        let mut session = Session::new(cfg.clone());
        session.submit(&optimize_request()).unwrap();
        // Let the server time the session out and close it.
        std::thread::sleep(Duration::from_millis(400));
        let out = session.submit(&optimize_request()).unwrap();
        assert_eq!(out.done.status, "clean");
        assert_eq!(out.done.reused, 1, "the reconnect resend hits the cache");
        assert_eq!(session.reconnects(), 1);
        drop(session);
        shutdown(&cfg).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn backoff_schedule_is_seeded_and_grows() {
        let base = Duration::from_millis(10);
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let da: Vec<_> = (0..4).map(|k| backoff_delay(base, k, &mut a)).collect();
        let db: Vec<_> = (0..4).map(|k| backoff_delay(base, k, &mut b)).collect();
        assert_eq!(da, db, "equal seeds replay equal schedules");
        for (k, d) in da.iter().enumerate() {
            let floor = Duration::from_millis(10 * (1 << k));
            assert!(*d >= floor && *d < floor + base, "attempt {k}: {d:?}");
        }
    }
}
