//! The transports: a TCP accept loop with bounded admission, and a
//! stdio-JSONL mode for pipe-driven use.
//!
//! # Admission control
//!
//! The acceptor thread does **no** request I/O — it only moves accepted
//! connections into a bounded [`sync_channel`]. When the queue is full,
//! the connection is shed immediately with a typed `overloaded` frame
//! and closed: the client sees a fast, explicit refusal, never a hang.
//! Worker threads drain the queue, applying a per-connection read
//! timeout so a stalled or malicious peer cannot pin a worker.
//!
//! # Shutdown
//!
//! A `shutdown` request flips the core's flag; the worker that served
//! it pokes the acceptor awake with a loopback connection. The acceptor
//! stops accepting, the queue drains, the workers join, and
//! [`serve_tcp`] returns — every admitted request is answered.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::core::ServerCore;
use crate::protocol::{read_frame, write_frame, ErrorCode, FrameError, Request, Response};

/// Per-connection read timeout: a peer that sends a length prefix and
/// then stalls loses its worker after this long, not forever.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Serve on an already-bound listener until a `shutdown` request
/// arrives. Blocks the calling thread; returns after the queue drains.
pub fn serve_tcp(core: Arc<ServerCore>, listener: TcpListener) -> io::Result<()> {
    let local = listener.local_addr()?;
    let (tx, rx) = sync_channel::<TcpStream>(core.config.queue_capacity.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<_> = (0..core.config.workers.max(1))
        .map(|_| {
            let core = Arc::clone(&core);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || worker_loop(&core, &rx, local))
        })
        .collect();

    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            // A failed accept (peer reset mid-handshake) is not a server
            // problem; keep accepting.
            Err(_) => continue,
        };
        if core.shutdown_requested() {
            break;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                core.note_overload_shed();
                shed_overloaded(stream, &core);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    drop(tx); // workers drain the queue, then see the hangup
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

fn worker_loop(core: &ServerCore, rx: &Mutex<Receiver<TcpStream>>, local: std::net::SocketAddr) {
    loop {
        // Hold the lock only for the dequeue, not the request.
        let conn = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match conn {
            Ok(stream) => {
                if let Err(e) = handle_conn(core, stream) {
                    // The peer vanished mid-conversation; its retry will
                    // hit the cache. Nothing useful to do with `e`.
                    let _ = e;
                }
                if core.shutdown_requested() {
                    // Poke the acceptor awake so it notices the flag;
                    // then keep draining — every admitted connection is
                    // still answered. (After the acceptor exits, the
                    // poke just fails to connect, which is fine.)
                    let _ = TcpStream::connect(local);
                }
            }
            Err(_) => return, // acceptor hung up and the queue is dry
        }
    }
}

/// Best-effort overload refusal: a short write timeout so a slow client
/// cannot turn the shed path itself into a hang.
fn shed_overloaded(stream: TcpStream, _core: &ServerCore) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut w = BufWriter::new(stream);
    let resp = Response::Error {
        code: ErrorCode::Overloaded,
        message: "admission queue full; back off and retry".into(),
    };
    let _ = write_frame(&mut w, &resp.encode());
}

/// One conversation: read a single request frame, answer it, close.
fn handle_conn(core: &ServerCore, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let payload = match read_frame(&mut reader) {
        Ok(Some(p)) => p,
        // Clean EOF before any frame: the shutdown poke, a port scan, a
        // health check. Nothing to answer.
        Ok(None) => return Ok(()),
        Err(FrameError::Io(e)) => return Err(e),
        Err(e @ (FrameError::Torn | FrameError::Malformed(_))) => {
            core.note_protocol_reject();
            let resp =
                Response::Error { code: ErrorCode::Protocol, message: format!("{e}") };
            return write_frame(&mut writer, &resp.encode());
        }
    };
    let req = match Request::decode(&payload) {
        Ok(r) => r,
        Err(message) => {
            core.note_protocol_reject();
            let resp = Response::Error { code: ErrorCode::Protocol, message };
            return write_frame(&mut writer, &resp.encode());
        }
    };
    core.handle(&req, &mut |resp| write_frame(&mut writer, &resp.encode()))
}

/// Serve request frames from `stdin`, answering on `stdout`, until EOF
/// or a `shutdown` request. Serial by construction — the pipe is the
/// admission queue.
pub fn serve_stdio(
    core: &ServerCore,
    input: &mut dyn Read,
    output: &mut dyn Write,
) -> io::Result<()> {
    let mut reader = BufReader::new(input);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(FrameError::Io(e)) => return Err(e),
            Err(e @ (FrameError::Torn | FrameError::Malformed(_))) => {
                core.note_protocol_reject();
                let resp =
                    Response::Error { code: ErrorCode::Protocol, message: format!("{e}") };
                write_frame(output, &resp.encode())?;
                // Framing is lost; there is no resynchronization point.
                return Ok(());
            }
        };
        match Request::decode(&payload) {
            Ok(req) => {
                core.handle(&req, &mut |resp| write_frame(output, &resp.encode()))?;
                if core.shutdown_requested() {
                    return Ok(());
                }
            }
            Err(message) => {
                core.note_protocol_reject();
                let resp = Response::Error { code: ErrorCode::Protocol, message };
                write_frame(output, &resp.encode())?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::core::ServeConfig;
    use crate::protocol::OptimizeRequest;
    use epre_frontend::{compile, NamingMode};

    const SRC: &str = "function sq(a)\n\
                       integer a\n\
                       begin\n\
                       return a * a\nend\n";

    fn module_text() -> String {
        format!("{}", compile(SRC, NamingMode::Disciplined).unwrap())
    }

    fn optimize_payload() -> String {
        Request::Optimize(OptimizeRequest {
            client: "t".into(),
            level: "partial".into(),
            policy: "best-effort".into(),
            deadline_ms: None,
            idempotency: String::new(),
            module_text: module_text(),
        })
        .encode()
    }

    #[test]
    fn stdio_mode_answers_a_full_conversation() {
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let mut input = Vec::new();
        write_frame(&mut input, &optimize_payload()).unwrap();
        write_frame(&mut input, &Request::Stats.encode()).unwrap();
        write_frame(&mut input, &Request::Shutdown.encode()).unwrap();
        let mut output = Vec::new();
        serve_stdio(&core, &mut &input[..], &mut output).unwrap();
        let mut r = std::io::BufReader::new(&output[..]);
        let mut kinds = Vec::new();
        while let Some(p) = read_frame(&mut r).unwrap() {
            kinds.push(match Response::decode(&p).unwrap() {
                Response::Function(_) => "function",
                Response::Done(_) => "done",
                Response::Error { .. } => "error",
                Response::Stats(_) => "stats",
                Response::Ack { .. } => "ack",
            });
        }
        assert_eq!(kinds, ["function", "done", "stats", "ack"]);
    }

    #[test]
    fn stdio_mode_types_garbage_instead_of_hanging() {
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let mut output = Vec::new();
        serve_stdio(&core, &mut "7\nnot js\n".as_bytes(), &mut output).unwrap();
        let mut r = std::io::BufReader::new(&output[..]);
        let p = read_frame(&mut r).unwrap().unwrap();
        assert!(
            matches!(Response::decode(&p), Ok(Response::Error { code: ErrorCode::Protocol, .. }))
        );
    }

    #[test]
    fn tcp_serves_submits_and_sheds_shutdown_cleanly() {
        let core = Arc::new(ServerCore::new(ServeConfig::default(), ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };

        let ask = |req: &Request| -> Vec<Response> {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = BufWriter::new(stream.try_clone().unwrap());
            write_frame(&mut w, &req.encode()).unwrap();
            let mut r = BufReader::new(stream);
            let mut frames = Vec::new();
            while let Some(p) = read_frame(&mut r).unwrap() {
                frames.push(Response::decode(&p).unwrap());
            }
            frames
        };

        let frames = ask(&Request::Optimize(OptimizeRequest {
            client: "tcp".into(),
            level: "distribution".into(),
            policy: "best-effort".into(),
            deadline_ms: Some(30_000),
            idempotency: String::new(),
            module_text: module_text(),
        }));
        assert!(matches!(frames.last(), Some(Response::Done(d)) if d.status == "clean"));

        let frames = ask(&Request::Ping);
        assert_eq!(frames, vec![Response::Ack { what: "pong".into() }]);

        let frames = ask(&Request::Shutdown);
        assert_eq!(frames, vec![Response::Ack { what: "shutdown".into() }]);
        server.join().unwrap().unwrap();
    }
}
