//! The transports: a TCP accept loop with bounded admission, and a
//! stdio-JSONL mode for pipe-driven use.
//!
//! # Admission control
//!
//! The acceptor thread does **no** request I/O — it only moves accepted
//! connections into a bounded [`sync_channel`]. When the queue is full,
//! the connection is shed immediately with a typed `overloaded` frame
//! and closed: the client sees a fast, explicit refusal, never a hang.
//! Worker threads drain the queue, applying a per-session read timeout
//! so a stalled or malicious peer cannot pin a worker.
//!
//! # Keep-alive sessions
//!
//! One admitted connection is one **session**: the worker answers
//! request frames in a loop until the peer closes, the session idles
//! past [`crate::ServeConfig::idle_timeout`], it reaches
//! [`crate::ServeConfig::max_session_requests`], or the server starts
//! draining — the last three end with a typed `goaway` frame so the
//! client reconnects instead of guessing. Poison is isolated per
//! session: frame-level garbage (torn or malformed bytes) draws a typed
//! `protocol` error and closes *that* connection only, because a broken
//! frame boundary leaves nothing to resynchronize on; a well-framed but
//! undecodable request draws the same typed error and the session
//! continues — framing is intact, so the next frame is trustworthy.
//!
//! # Shutdown and drain
//!
//! A `shutdown` request (or [`crate::ServerCore::request_shutdown`],
//! the SIGTERM path) flips the core's flag; the worker that served it
//! pokes the acceptor awake with an explicit loopback `ping` frame —
//! a real control frame, so a port scan or health probe that connects
//! and says nothing can never be mistaken for control traffic (empty
//! connections are merely counted). The acceptor stops accepting and
//! [`serve_tcp`] drains: admitted sessions get
//! [`crate::ServeConfig::drain_deadline`] to finish (each sees `goaway
//! draining` at its next frame boundary); stragglers past the deadline
//! are abandoned and counted. Either way the cache is compacted and
//! fsynced before [`serve_tcp`] returns — the graceful exit leaves a
//! minimal, durable journal, while kill -9 semantics are unchanged.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::core::{GoawayReason, ServerCore};
use crate::protocol::{read_frame, write_frame, ErrorCode, FrameError, Request, Response};

/// Default per-session idle timeout (see
/// [`crate::ServeConfig::idle_timeout`] for the configurable knob).
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Serve on an already-bound listener until a `shutdown` request
/// arrives. Blocks the calling thread; returns after the graceful
/// drain: admitted sessions get the configured drain deadline to
/// finish, the cache is compacted and fsynced, and only then does this
/// return — every admitted request is answered unless the deadline
/// abandons it.
pub fn serve_tcp(core: Arc<ServerCore>, listener: TcpListener) -> io::Result<()> {
    let local = listener.local_addr()?;
    let (tx, rx) = sync_channel::<TcpStream>(core.config.queue_capacity.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let n_workers = core.config.workers.max(1);
    for _ in 0..n_workers {
        let core = Arc::clone(&core);
        let rx = Arc::clone(&rx);
        let done_tx = done_tx.clone();
        std::thread::spawn(move || {
            worker_loop(&core, &rx, local);
            let _ = done_tx.send(());
        });
    }
    drop(done_tx);

    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            // A failed accept (peer reset mid-handshake) is not a server
            // problem; keep accepting.
            Err(_) => continue,
        };
        if core.shutdown_requested() {
            break;
        }
        match tx.try_send(stream) {
            // The admission gauge rises here and falls at worker pickup;
            // note_admission also spots (and counts) worker saturation.
            Ok(()) => core.metrics().note_admission(),
            Err(TrySendError::Full(stream)) => {
                core.note_overload_shed();
                shed_overloaded(stream, &core);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    drop(tx); // workers drain the queue, then see the hangup

    // Drain under the deadline: workers signal completion through the
    // done channel; whoever is still mid-session when it expires is
    // abandoned (their threads die with the process) and counted.
    let deadline = Instant::now() + core.config.drain_deadline;
    let mut finished = 0usize;
    while finished < n_workers {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match done_rx.recv_timeout(remaining) {
            Ok(()) => finished += 1,
            Err(RecvTimeoutError::Timeout) => {
                core.note_drain_abandoned((n_workers - finished) as u64);
                break;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    core.drain_flush()
}

fn worker_loop(core: &ServerCore, rx: &Mutex<Receiver<TcpStream>>, local: std::net::SocketAddr) {
    loop {
        // Hold the lock only for the dequeue, not the session.
        let conn = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match conn {
            Ok(stream) => {
                core.metrics().queue_depth.dec();
                core.metrics().workers_busy.inc();
                if let Err(e) = handle_conn(core, stream) {
                    // The peer vanished mid-conversation; its retry will
                    // hit the cache. Nothing useful to do with `e`.
                    let _ = e;
                }
                core.metrics().workers_busy.dec();
                if core.shutdown_requested() {
                    // Poke the acceptor awake so it notices the flag;
                    // then keep draining — every admitted connection is
                    // still answered. (After the acceptor exits, the
                    // poke just fails to connect, which is fine.)
                    poke_acceptor(local);
                }
            }
            Err(_) => return, // acceptor hung up and the queue is dry
        }
    }
}

/// Wake the acceptor with an explicit control frame: a loopback
/// connection carrying one `ping`. The frame is what makes it control
/// traffic — a connection that says nothing (port scan, health probe)
/// is counted as empty and otherwise ignored, so the two can never be
/// confused.
fn poke_acceptor(local: std::net::SocketAddr) {
    if let Ok(stream) = TcpStream::connect(local) {
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let mut w = BufWriter::new(stream);
        let _ = write_frame(&mut w, &Request::Ping.encode());
        // Dropping the stream closes it; if the acceptor already exited,
        // nobody reads the ping — equally fine, the connect itself woke
        // the accept loop.
    }
}

/// Best-effort overload refusal: a short write timeout so a slow client
/// cannot turn the shed path itself into a hang.
fn shed_overloaded(stream: TcpStream, _core: &ServerCore) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut w = BufWriter::new(stream);
    let resp = Response::Error {
        code: ErrorCode::Overloaded,
        message: "admission queue full; back off and retry".into(),
        request: String::new(),
    };
    let _ = write_frame(&mut w, &resp.encode());
}

/// Classify a frame-level error for the latency histograms and the
/// flight recorder: a frame over the size cap is `oversized` traffic,
/// anything else torn or malformed is `poison`.
fn frame_error_class(e: &FrameError) -> &'static str {
    match e {
        FrameError::Malformed(m) if m.contains("exceeds cap") => "oversized",
        _ => "poison",
    }
}

/// Send the session-terminal `goaway` frame and account for it. The
/// write is best-effort: the peer may already be gone, which changes
/// nothing about the session ending.
fn end_session(core: &ServerCore, writer: &mut dyn Write, reason: GoawayReason) {
    core.note_goaway(reason);
    let resp = Response::Goaway { reason: reason.label().into() };
    let _ = write_frame(writer, &resp.encode());
}

/// One keep-alive session: answer request frames until the peer closes,
/// the idle timeout fires, the per-session request cap is reached, or
/// the server is draining.
fn handle_conn(core: &ServerCore, stream: TcpStream) -> io::Result<()> {
    // A keep-alive session is a request/response conversation of small
    // frames, each flushed explicitly — exactly the write pattern
    // Nagle's algorithm penalizes with delayed-ACK stalls (~40ms per
    // answer). Disable it; framing already batches what should batch.
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(core.config.idle_timeout))?;
    let write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut served = 0usize;
    loop {
        if core.shutdown_requested() {
            end_session(core, &mut writer, GoawayReason::Draining);
            return Ok(());
        }
        let t_read = Instant::now();
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => {
                // Clean EOF between frames: the peer is done with the
                // session. Before any frame at all, it was never a
                // session — a port scan or health probe, counted so the
                // operator can see the noise.
                if served == 0 {
                    core.note_empty_conn();
                }
                return Ok(());
            }
            Err(FrameError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // The session idled out. `goaway` tells the peer to
                // reconnect rather than wonder; a one-shot client that
                // already left never sees it.
                end_session(core, &mut writer, GoawayReason::IdleTimeout);
                return Ok(());
            }
            Err(FrameError::Io(e)) => return Err(e),
            Err(e @ (FrameError::Torn | FrameError::Malformed(_))) => {
                // Frame-level poison: the byte stream is out of sync, so
                // this session is unrecoverable — but only this session.
                core.note_protocol_reject();
                let class = frame_error_class(&e);
                core.metrics().observe_latency(class, t_read.elapsed().as_micros() as u64);
                core.recorder().note(class, &format!("{e}"));
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("{e}"),
                    request: String::new(),
                };
                return write_frame(&mut writer, &resp.encode());
            }
        };
        if served == 0 {
            core.note_session();
        }
        match Request::decode(&payload) {
            Ok(req) => {
                core.handle(&req, &mut |resp| write_frame(&mut writer, &resp.encode()))?;
                served += 1;
                if matches!(req, Request::Shutdown) {
                    // The ack was the session's last frame; the drain
                    // goaway would race the close, so just end it.
                    return Ok(());
                }
                if served >= core.config.max_session_requests.max(1) {
                    end_session(core, &mut writer, GoawayReason::MaxRequests);
                    return Ok(());
                }
            }
            Err(message) => {
                // Well-framed garbage: the framing survived, so the
                // session does too — answer typed and keep reading.
                core.note_protocol_reject();
                core.metrics().observe_latency("poison", t_read.elapsed().as_micros() as u64);
                core.recorder().note("poison", &message);
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message,
                    request: String::new(),
                };
                write_frame(&mut writer, &resp.encode())?;
                served += 1;
            }
        }
    }
}

/// Serve `GET /metrics` as Prometheus text exposition over plain
/// HTTP/1.0 until the core begins shutdown — the scrape sidecar behind
/// `epre serve --metrics-port`. One connection per scrape, answered
/// inline on this thread: a metrics endpoint needs no worker pool, and
/// the nonblocking accept loop re-checks the shutdown flag every 100ms
/// so the listener drains with the daemon.
///
/// # Errors
/// Only listener setup (`set_nonblocking`); per-connection I/O errors
/// are dropped — a vanished scraper is the scraper's problem.
pub fn serve_metrics_http(listener: TcpListener, core: Arc<ServerCore>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if core.shutdown_requested() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = answer_http_scrape(stream, &core);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(_) => continue,
        }
    }
}

fn answer_http_scrape(stream: TcpStream, core: &ServerCore) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; the answer depends only on the request line.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let mut w = BufWriter::new(stream);
    if method == "GET" && path.trim_end_matches('/') == "/metrics" {
        let body = core.render_metrics("text");
        write!(
            w,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "not found; try GET /metrics\n";
        write!(
            w,
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    w.flush()
}

/// Serve request frames from `stdin`, answering on `stdout`, until EOF
/// or a `shutdown` request, then flush the cache (the stdio transport's
/// graceful drain — there is nothing to abandon, the pipe is serial).
/// Serial by construction — the pipe is the admission queue.
pub fn serve_stdio(
    core: &ServerCore,
    input: &mut dyn Read,
    output: &mut dyn Write,
) -> io::Result<()> {
    let result = serve_stdio_inner(core, input, output);
    let flush = core.drain_flush();
    result.and(flush)
}

fn serve_stdio_inner(
    core: &ServerCore,
    input: &mut dyn Read,
    output: &mut dyn Write,
) -> io::Result<()> {
    let mut reader = BufReader::new(input);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(FrameError::Io(e)) => return Err(e),
            Err(e @ (FrameError::Torn | FrameError::Malformed(_))) => {
                core.note_protocol_reject();
                let class = frame_error_class(&e);
                core.metrics().observe_latency(class, 0);
                core.recorder().note(class, &format!("{e}"));
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("{e}"),
                    request: String::new(),
                };
                write_frame(output, &resp.encode())?;
                // Framing is lost; there is no resynchronization point.
                return Ok(());
            }
        };
        match Request::decode(&payload) {
            Ok(req) => {
                core.handle(&req, &mut |resp| write_frame(output, &resp.encode()))?;
                if core.shutdown_requested() {
                    return Ok(());
                }
            }
            Err(message) => {
                core.note_protocol_reject();
                core.metrics().observe_latency("poison", 0);
                core.recorder().note("poison", &message);
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message,
                    request: String::new(),
                };
                write_frame(output, &resp.encode())?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::core::ServeConfig;
    use crate::protocol::OptimizeRequest;
    use epre_frontend::{compile, NamingMode};

    const SRC: &str = "function sq(a)\n\
                       integer a\n\
                       begin\n\
                       return a * a\nend\n";

    fn module_text() -> String {
        format!("{}", compile(SRC, NamingMode::Disciplined).unwrap())
    }

    fn optimize_request() -> Request {
        Request::Optimize(OptimizeRequest {
            client: "t".into(),
            level: "partial".into(),
            policy: "best-effort".into(),
            deadline_ms: None,
            idempotency: String::new(),
            request: String::new(),
            module_text: module_text(),
        })
    }

    /// Read response frames until (and including) the request-terminal
    /// frame — the keep-alive way to consume one answer.
    fn read_answer(r: &mut impl std::io::BufRead) -> Vec<Response> {
        let mut frames = Vec::new();
        while let Some(p) = read_frame(r).unwrap() {
            let resp = Response::decode(&p).unwrap();
            let terminal = resp.is_terminal();
            frames.push(resp);
            if terminal {
                break;
            }
        }
        frames
    }

    fn stats_counter(frames: &[Response], name: &str) -> u64 {
        match frames.last() {
            Some(Response::Stats(counters)) => {
                counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap()
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn stdio_mode_answers_a_full_conversation() {
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let mut input = Vec::new();
        write_frame(&mut input, &optimize_request().encode()).unwrap();
        write_frame(&mut input, &Request::Stats.encode()).unwrap();
        write_frame(&mut input, &Request::Shutdown.encode()).unwrap();
        let mut output = Vec::new();
        serve_stdio(&core, &mut &input[..], &mut output).unwrap();
        let mut r = std::io::BufReader::new(&output[..]);
        let mut kinds = Vec::new();
        while let Some(p) = read_frame(&mut r).unwrap() {
            kinds.push(match Response::decode(&p).unwrap() {
                Response::Function(_) => "function",
                Response::Done(_) => "done",
                Response::Error { .. } => "error",
                Response::Stats(_) => "stats",
                Response::Ack { .. } => "ack",
                Response::Goaway { .. } => "goaway",
                Response::Metrics { .. } => "metrics",
            });
        }
        assert_eq!(kinds, ["function", "done", "stats", "ack"]);
    }

    #[test]
    fn stdio_mode_types_garbage_instead_of_hanging() {
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let mut output = Vec::new();
        serve_stdio(&core, &mut "7\nnot js\n".as_bytes(), &mut output).unwrap();
        let mut r = std::io::BufReader::new(&output[..]);
        let p = read_frame(&mut r).unwrap().unwrap();
        assert!(
            matches!(Response::decode(&p), Ok(Response::Error { code: ErrorCode::Protocol, .. }))
        );
    }

    #[test]
    fn tcp_serves_submits_and_sheds_shutdown_cleanly() {
        let core = Arc::new(ServerCore::new(ServeConfig::default(), ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };

        let ask = |req: &Request| -> Vec<Response> {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = BufWriter::new(stream.try_clone().unwrap());
            write_frame(&mut w, &req.encode()).unwrap();
            let mut r = BufReader::new(stream);
            read_answer(&mut r)
        };

        let frames = ask(&optimize_request());
        assert!(matches!(frames.last(), Some(Response::Done(d)) if d.status == "clean"));

        let frames = ask(&Request::Ping);
        assert_eq!(frames, vec![Response::Ack { what: "pong".into() }]);

        let frames = ask(&Request::Shutdown);
        assert_eq!(frames, vec![Response::Ack { what: "shutdown".into() }]);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn keepalive_session_serves_many_requests_then_goaway_max_requests() {
        let config = ServeConfig { max_session_requests: 3, ..Default::default() };
        let core = Arc::new(ServerCore::new(config, ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };

        // One connection, three requests: two pings and an optimize, then
        // the server ends the session with goaway max-requests.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        let mut r = BufReader::new(stream);
        write_frame(&mut w, &Request::Ping.encode()).unwrap();
        assert_eq!(read_answer(&mut r), vec![Response::Ack { what: "pong".into() }]);
        write_frame(&mut w, &optimize_request().encode()).unwrap();
        assert!(matches!(read_answer(&mut r).last(), Some(Response::Done(_))));
        write_frame(&mut w, &Request::Ping.encode()).unwrap();
        assert_eq!(read_answer(&mut r), vec![Response::Ack { what: "pong".into() }]);
        // Third request hit the cap: the next frame is the goaway.
        let frames = read_answer(&mut r);
        assert_eq!(frames, vec![Response::Goaway { reason: "max-requests".into() }]);
        // And the server closed the session after it.
        assert!(read_frame(&mut r).unwrap().is_none());

        // The daemon itself is still serving.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w2 = BufWriter::new(stream.try_clone().unwrap());
        write_frame(&mut w2, &Request::Stats.encode()).unwrap();
        let mut r2 = BufReader::new(stream);
        let frames = read_answer(&mut r2);
        assert_eq!(stats_counter(&frames, "goaway_max_requests"), 1);
        assert_eq!(stats_counter(&frames, "sessions"), 2);
        write_frame(&mut w2, &Request::Shutdown.encode()).unwrap();
        assert!(matches!(read_answer(&mut r2).last(), Some(Response::Ack { .. })));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn idle_session_gets_goaway_idle_timeout() {
        let config =
            ServeConfig { idle_timeout: Duration::from_millis(150), ..Default::default() };
        let core = Arc::new(ServerCore::new(config, ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };

        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        let mut r = BufReader::new(stream);
        write_frame(&mut w, &Request::Ping.encode()).unwrap();
        assert_eq!(read_answer(&mut r), vec![Response::Ack { what: "pong".into() }]);
        // Send nothing: the server must end the session, typed.
        let frames = read_answer(&mut r);
        assert_eq!(frames, vec![Response::Goaway { reason: "idle-timeout".into() }]);
        assert!(read_frame(&mut r).unwrap().is_none(), "server closed after goaway");

        let stream = TcpStream::connect(addr).unwrap();
        let mut w2 = BufWriter::new(stream.try_clone().unwrap());
        write_frame(&mut w2, &Request::Shutdown.encode()).unwrap();
        let mut r2 = BufReader::new(stream);
        assert!(matches!(read_answer(&mut r2).last(), Some(Response::Ack { .. })));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn garbage_frame_poisons_only_its_own_session() {
        let core = Arc::new(ServerCore::new(ServeConfig::default(), ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };

        // Session A: a good request, then frame-level garbage mid-session.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        let mut r = BufReader::new(stream);
        write_frame(&mut w, &Request::Ping.encode()).unwrap();
        assert_eq!(read_answer(&mut r), vec![Response::Ack { what: "pong".into() }]);
        w.write_all(b"%%%this is not a frame%%%\n").unwrap();
        w.flush().unwrap();
        let frames = read_answer(&mut r);
        assert!(
            matches!(frames.last(), Some(Response::Error { code: ErrorCode::Protocol, .. })),
            "poison draws a typed error, {frames:?}"
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "the poisoned session is closed");

        // Session B (concurrent server state): entirely unaffected.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w2 = BufWriter::new(stream.try_clone().unwrap());
        let mut r2 = BufReader::new(stream);
        write_frame(&mut w2, &optimize_request().encode()).unwrap();
        assert!(matches!(read_answer(&mut r2).last(), Some(Response::Done(d)) if d.status == "clean"));
        write_frame(&mut w2, &Request::Shutdown.encode()).unwrap();
        assert!(matches!(read_answer(&mut r2).last(), Some(Response::Ack { .. })));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn undecodable_but_well_framed_request_keeps_the_session() {
        let core = Arc::new(ServerCore::new(ServeConfig::default(), ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };

        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        let mut r = BufReader::new(stream);
        // A perfectly framed payload the decoder rejects.
        write_frame(&mut w, r#"{"v":1,"kind":"destroy"}"#).unwrap();
        let frames = read_answer(&mut r);
        assert!(matches!(frames.last(), Some(Response::Error { code: ErrorCode::Protocol, .. })));
        // Framing is intact, so the session still answers.
        write_frame(&mut w, &Request::Ping.encode()).unwrap();
        assert_eq!(read_answer(&mut r), vec![Response::Ack { what: "pong".into() }]);
        write_frame(&mut w, &Request::Shutdown.encode()).unwrap();
        assert!(matches!(read_answer(&mut r).last(), Some(Response::Ack { .. })));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn port_scans_are_counted_never_mistaken_for_control_traffic() {
        let core = Arc::new(ServerCore::new(ServeConfig::default(), ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };

        // Three "port scans": connect, say nothing, leave.
        for _ in 0..3 {
            drop(TcpStream::connect(addr).unwrap());
        }
        // The daemon must still be serving (an implicit-shutdown bug
        // would have begun draining here), and must have counted them.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        let mut r = BufReader::new(stream);
        write_frame(&mut w, &Request::Stats.encode()).unwrap();
        let frames = read_answer(&mut r);
        assert_eq!(stats_counter(&frames, "conn_empty"), 3);
        assert_eq!(stats_counter(&frames, "goaway_draining"), 0, "no drain began");
        write_frame(&mut w, &Request::Shutdown.encode()).unwrap();
        assert!(matches!(read_answer(&mut r).last(), Some(Response::Ack { .. })));
        server.join().unwrap().unwrap();
    }

    #[test]
    fn drain_deadline_abandons_a_stuck_session_and_returns() {
        // One worker, pinned by a session that never sends its next
        // frame. The drain deadline must bound serve_tcp's return.
        let config = ServeConfig {
            workers: 1,
            idle_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_millis(200),
            ..Default::default()
        };
        let core = Arc::new(ServerCore::new(config, ResultCache::in_memory()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };

        // Pin the only worker: send one ping, then hold the session open.
        let pinned = TcpStream::connect(addr).unwrap();
        let mut pw = BufWriter::new(pinned.try_clone().unwrap());
        let mut pr = BufReader::new(pinned.try_clone().unwrap());
        write_frame(&mut pw, &Request::Ping.encode()).unwrap();
        assert_eq!(read_answer(&mut pr), vec![Response::Ack { what: "pong".into() }]);
        // Let the worker re-enter its blocking read; if shutdown lands
        // before it does, the loop-top check would end the session with
        // a draining goaway instead of pinning it.
        std::thread::sleep(Duration::from_millis(300));

        // Request shutdown from outside and poke the acceptor — the
        // SIGTERM path. The pinned worker is blocked reading, so only
        // the drain deadline can end the wait.
        core.request_shutdown();
        poke_acceptor(addr);
        let t0 = Instant::now();
        server.join().unwrap().unwrap();
        let waited = t0.elapsed();
        assert!(
            waited < Duration::from_secs(4),
            "drain returned via deadline, not the 5s idle timeout ({waited:?})"
        );
        let abandoned = core
            .stats_snapshot()
            .into_iter()
            .find(|(k, _)| k == "drain_abandoned")
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(abandoned, 1, "the pinned session was abandoned and counted");
        drop(pinned);
    }
}
