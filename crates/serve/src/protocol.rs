//! The wire protocol: length-prefixed JSONL frames and their typed
//! request/response shapes.
//!
//! # Framing
//!
//! Every message — in both directions — is one frame:
//!
//! ```text
//! <byte-length of payload, ASCII decimal>\n
//! <payload: one JSON document, no embedded framing>\n
//! ```
//!
//! The length prefix makes torn writes detectable (a killed server
//! leaves a frame shorter than its prefix promised → [`FrameError::Torn`],
//! which the client treats as retryable), and the trailing newline keeps
//! the stream greppable and `nc`-debuggable. Frames are capped at
//! [`MAX_FRAME_BYTES`]; an oversized prefix is a protocol error, not an
//! allocation.
//!
//! # Conversation shape
//!
//! Connections are **keep-alive**: a client may stream many request
//! frames over one connection. Each request is answered with zero or
//! more `function` progress frames followed by exactly one
//! request-terminal frame (`done`, `error`, `stats`, or `ack`), after
//! which the next request may be sent. The server ends the session with
//! a `goaway` frame — sent instead of reading another request — when
//! the connection idles past its timeout, reaches its per-session
//! request cap, or the server is draining; after `goaway` the server
//! closes, and the client reconnects for further work. One-shot clients
//! that close after their terminal frame are simply a one-request
//! session. Clients must tolerate the connection dying at any frame
//! boundary or mid-frame — that is what a SIGKILLed server looks like
//! from outside.
//!
//! Poison isolation: a frame that is not a frame (garbage prefix, torn
//! payload, non-JSON) ends *that session only* with a `protocol` error
//! frame where possible; other sessions and the server are unaffected.

use std::io::{self, BufRead, Write};

use crate::json::{obj, parse, Json};

/// Protocol version; bump on incompatible changes.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on one frame's payload (64 MiB) — far above any real
/// module, low enough that a garbage length prefix cannot OOM the peer.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed (includes read timeouts).
    Io(io::Error),
    /// The stream ended mid-frame: the peer died between writing the
    /// length prefix and finishing the payload. Retryable.
    Torn,
    /// The bytes are not a frame (bad prefix, missing newline, payload
    /// is not JSON, oversized). Not retryable.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::Torn => write!(f, "stream ended mid-frame (peer died?)"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: length prefix, payload, trailing newline, flush.
/// A single buffered write + flush, so a crash tears at most this frame.
pub fn write_frame(w: &mut dyn Write, payload: &str) -> io::Result<()> {
    let mut buf = Vec::with_capacity(payload.len() + 16);
    buf.extend_from_slice(payload.len().to_string().as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(payload.as_bytes());
    buf.push(b'\n');
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` is a clean end-of-stream (EOF
/// exactly at a frame boundary); EOF anywhere else is [`FrameError::Torn`].
pub fn read_frame(r: &mut dyn BufRead) -> Result<Option<String>, FrameError> {
    let mut prefix = String::new();
    if r.read_line(&mut prefix)? == 0 {
        return Ok(None); // clean EOF between frames
    }
    let trimmed = prefix.trim_end_matches('\n');
    if trimmed.len() != prefix.len() - 1 {
        return Err(FrameError::Torn); // EOF inside the prefix line
    }
    let len: usize = trimmed
        .parse()
        .map_err(|_| FrameError::Malformed(format!("bad length prefix {trimmed:?}")))?;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Malformed(format!("frame of {len} bytes exceeds cap")));
    }
    let mut payload = vec![0u8; len + 1]; // +1 for the trailing newline
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Torn),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if payload.pop() != Some(b'\n') {
        return Err(FrameError::Malformed("frame payload not newline-terminated".into()));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::Malformed("frame payload is not UTF-8".into()))
}

/// An `optimize` request: one module plus its optimization contract.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Client identity, the quarantine key. Empty means anonymous (all
    /// anonymous clients share one quarantine bucket).
    pub client: String,
    /// Optimization level label (`baseline` … `distribution+lvn`).
    pub level: String,
    /// Fault policy label (`best-effort` or `retry-then-skip`;
    /// `fail-fast` is rejected — a daemon degrades, it does not die).
    pub policy: String,
    /// Relative deadline in milliseconds; `None` waits indefinitely.
    pub deadline_ms: Option<u64>,
    /// Idempotency key. Clients derive it from the input fingerprint
    /// ([`OptimizeRequest::idempotency_key`]); the server echoes it in
    /// the `done` frame so retries can be correlated.
    pub idempotency: String,
    /// End-to-end trace id. Clients mint it from content + identity
    /// ([`OptimizeRequest::request_id`]); the server echoes it in every
    /// frame of the response stream and keys its per-request spans and
    /// flight-recorder summaries by it, so a client-side latency sample
    /// correlates with the server-side account of the same request.
    /// Empty is legal (old clients); the server then mints the same
    /// derived id itself.
    pub request: String,
    /// The ILOC module text to optimize.
    pub module_text: String,
}

impl OptimizeRequest {
    /// The content-derived idempotency key: a 16-hex-digit FNV-1a
    /// fingerprint over everything that affects the answer (level,
    /// policy, requested deadline, module text). Two retries of the same
    /// request — however long each waited — share a key.
    pub fn idempotency_key(&self) -> String {
        let blob = format!(
            "level={} policy={} deadline_ms={} module:\n{}",
            self.level,
            self.policy,
            self.deadline_ms.map_or_else(|| "none".to_string(), |d| d.to_string()),
            self.module_text
        );
        format!("{:016x}", epre_harness::fingerprint64(&blob))
    }

    /// The content-derived request id: the idempotency fingerprint
    /// salted with the client identity, so two clients submitting the
    /// same module trace as distinct requests while retries of one
    /// request share an id. Derived identically on both ends — a client
    /// that sent an empty `request` field still gets the id it *would*
    /// have minted echoed back.
    pub fn request_id(&self) -> String {
        let blob = format!("request client={} key={}", self.client, self.idempotency_key());
        format!("{:016x}", epre_harness::fingerprint64(&blob))
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Optimize a module.
    Optimize(OptimizeRequest),
    /// Report server counters.
    Stats,
    /// Report the live metrics registry in the given format (`"text"`
    /// for Prometheus-style exposition, `"json"` for the integer-only
    /// JSON render).
    Metrics {
        /// Requested render: `"text"` or `"json"`.
        format: String,
    },
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting and drain.
    Shutdown,
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Request::Optimize(r) => {
                let mut fields = vec![
                    ("v", Json::U64(PROTOCOL_VERSION)),
                    ("kind", Json::Str("optimize".into())),
                    ("client", Json::Str(r.client.clone())),
                    ("level", Json::Str(r.level.clone())),
                    ("policy", Json::Str(r.policy.clone())),
                ];
                if let Some(d) = r.deadline_ms {
                    fields.push(("deadline_ms", Json::U64(d)));
                }
                fields.push(("idempotency", Json::Str(r.idempotency.clone())));
                if !r.request.is_empty() {
                    fields.push(("request", Json::Str(r.request.clone())));
                }
                fields.push(("module", Json::Str(r.module_text.clone())));
                obj(fields).encode()
            }
            Request::Metrics { format } => obj(vec![
                ("v", Json::U64(PROTOCOL_VERSION)),
                ("kind", Json::Str("metrics".into())),
                ("format", Json::Str(format.clone())),
            ])
            .encode(),
            Request::Stats => simple_kind("stats"),
            Request::Ping => simple_kind("ping"),
            Request::Shutdown => simple_kind("shutdown"),
        }
    }

    /// Decode a frame payload. The error string is safe to echo to the
    /// peer in a `protocol` error response.
    pub fn decode(payload: &str) -> Result<Request, String> {
        let v = parse(payload).map_err(|e| format!("request is not valid JSON: {e}"))?;
        let version = v.get("v").and_then(Json::as_u64).ok_or("missing integer field 'v'")?;
        if version != PROTOCOL_VERSION {
            return Err(format!("unsupported protocol version {version}"));
        }
        let kind = v.get("kind").and_then(Json::as_str).ok_or("missing string field 'kind'")?;
        match kind {
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "metrics" => {
                // `format` is optional: a bare metrics request means text.
                let format = match v.get("format") {
                    None | Some(Json::Null) => "text".to_string(),
                    Some(f) => f
                        .as_str()
                        .map(str::to_string)
                        .ok_or("field 'format' must be a string")?,
                };
                Ok(Request::Metrics { format })
            }
            "optimize" => {
                let str_field = |name: &str| -> Result<String, String> {
                    v.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or(format!("missing string field '{name}'"))
                };
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(d) => {
                        Some(d.as_u64().ok_or("field 'deadline_ms' must be an integer")?)
                    }
                };
                // `request` is optional for wire compatibility: frames
                // from pre-tracing clients decode with an empty id and
                // the server derives the canonical one itself.
                let request = match v.get("request") {
                    None | Some(Json::Null) => String::new(),
                    Some(r) => r
                        .as_str()
                        .map(str::to_string)
                        .ok_or("field 'request' must be a string")?,
                };
                Ok(Request::Optimize(OptimizeRequest {
                    client: str_field("client")?,
                    level: str_field("level")?,
                    policy: str_field("policy")?,
                    deadline_ms,
                    idempotency: str_field("idempotency")?,
                    request,
                    module_text: str_field("module")?,
                }))
            }
            other => Err(format!("unknown request kind {other:?}")),
        }
    }
}

fn simple_kind(kind: &str) -> String {
    obj(vec![("v", Json::U64(PROTOCOL_VERSION)), ("kind", Json::Str(kind.into()))]).encode()
}

/// Why the server refused to answer an `optimize` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue was full; back off and retry. Retryable.
    Overloaded,
    /// The request's deadline expired before work could start (or the
    /// module parse left no time). Not retryable with the same deadline.
    Deadline,
    /// This client's faults tripped the per-client quarantine; its
    /// requests are refused until the server restarts. Not retryable.
    Quarantined,
    /// The module text did not parse. Not retryable.
    Parse,
    /// The request frame itself was malformed. Not retryable.
    Protocol,
}

impl ErrorCode {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Parse => "parse",
            ErrorCode::Protocol => "protocol",
        }
    }

    /// Parse a wire label.
    pub fn from_label(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "overloaded" => ErrorCode::Overloaded,
            "deadline" => ErrorCode::Deadline,
            "quarantined" => ErrorCode::Quarantined,
            "parse" => ErrorCode::Parse,
            "protocol" => ErrorCode::Protocol,
            _ => return None,
        })
    }

    /// Whether a client should retry after seeing this code. Only
    /// overload is worth retrying: the server sheds load in bursts, and
    /// backoff plus jitter spreads the herd. The rest are deterministic
    /// rejections — retrying re-earns the same answer.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded)
    }
}

/// Per-function accounting in a `done` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionFrame {
    /// Function name.
    pub name: String,
    /// Echo of the request's trace id (empty from pre-tracing servers).
    pub request: String,
    /// Body replayed from the result cache (no pipeline ran).
    pub cached: bool,
    /// Contained pass faults attributed to this function.
    pub faults: u64,
    /// The function was rolled back to its input form (oracle divergence
    /// or fault rollback).
    pub rolled_back: bool,
}

/// The terminal accounting of a completed `optimize` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoneFrame {
    /// `"clean"` or `"degraded"` (some function faulted or rolled back).
    pub status: String,
    /// Echo of the request's idempotency key.
    pub idempotency: String,
    /// Echo of the request's trace id (empty from pre-tracing servers).
    pub request: String,
    /// The optimized module text.
    pub module_text: String,
    /// Functions replayed from the result cache.
    pub reused: u64,
    /// Functions freshly optimized.
    pub fresh: u64,
    /// Contained pass faults across the request.
    pub faults: u64,
    /// Functions rolled back to their input form.
    pub rollbacks: u64,
    /// Passes quarantined by the per-request circuit breaker.
    pub quarantined: u64,
    /// Oracle comparisons that ran out of fuel (proved nothing).
    pub inconclusive: u64,
    /// This request's faults tripped the per-client quarantine; later
    /// requests from this client will be refused.
    pub client_quarantined: bool,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-function progress (streamed before `done`).
    Function(FunctionFrame),
    /// Terminal success frame.
    Done(DoneFrame),
    /// Terminal refusal frame.
    Error {
        /// Typed refusal reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Echo of the refused request's trace id, when one was parsed
        /// before refusal (empty for frame-level protocol errors).
        request: String,
    },
    /// Terminal metrics frame (answer to `metrics`): the rendered
    /// registry in the requested format.
    Metrics {
        /// The render — Prometheus-style text or integer-only JSON.
        body: String,
    },
    /// Terminal counters frame (answer to `stats`): name/value pairs in
    /// server-chosen stable order.
    Stats(Vec<(String, u64)>),
    /// Terminal acknowledgement (answer to `ping` / `shutdown`).
    Ack {
        /// What is acknowledged (`"pong"` or `"shutdown"`).
        what: String,
    },
    /// Session-terminal frame: the server is ending this keep-alive
    /// session (not answering a particular request) and will close the
    /// connection. The client should reconnect for further work — the
    /// session ending is never a verdict on any request.
    Goaway {
        /// Why the session ended: `"idle-timeout"`, `"max-requests"`,
        /// or `"draining"`.
        reason: String,
    },
}

impl Response {
    /// Is this a request-terminal frame (the last one for the request in
    /// flight)? `goaway` is also *session*-terminal: no more frames
    /// follow on the connection at all.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::Function(_))
    }

    /// Encode to a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Response::Function(f) => obj(vec![
                ("kind", Json::Str("function".into())),
                ("name", Json::Str(f.name.clone())),
                ("request", Json::Str(f.request.clone())),
                ("cached", Json::Bool(f.cached)),
                ("faults", Json::U64(f.faults)),
                ("rolled_back", Json::Bool(f.rolled_back)),
            ])
            .encode(),
            Response::Done(d) => obj(vec![
                ("kind", Json::Str("done".into())),
                ("status", Json::Str(d.status.clone())),
                ("idempotency", Json::Str(d.idempotency.clone())),
                ("request", Json::Str(d.request.clone())),
                ("reused", Json::U64(d.reused)),
                ("fresh", Json::U64(d.fresh)),
                ("faults", Json::U64(d.faults)),
                ("rollbacks", Json::U64(d.rollbacks)),
                ("quarantined", Json::U64(d.quarantined)),
                ("inconclusive", Json::U64(d.inconclusive)),
                ("client_quarantined", Json::Bool(d.client_quarantined)),
                ("module", Json::Str(d.module_text.clone())),
            ])
            .encode(),
            Response::Error { code, message, request } => obj(vec![
                ("kind", Json::Str("error".into())),
                ("code", Json::Str(code.label().into())),
                ("message", Json::Str(message.clone())),
                ("request", Json::Str(request.clone())),
            ])
            .encode(),
            Response::Metrics { body } => obj(vec![
                ("kind", Json::Str("metrics".into())),
                ("body", Json::Str(body.clone())),
            ])
            .encode(),
            Response::Stats(counters) => obj(vec![
                ("kind", Json::Str("stats".into())),
                (
                    "counters",
                    Json::Obj(
                        counters.iter().map(|(k, v)| (k.clone(), Json::U64(*v))).collect(),
                    ),
                ),
            ])
            .encode(),
            Response::Ack { what } => {
                obj(vec![("kind", Json::Str("ack".into())), ("what", Json::Str(what.clone()))])
                    .encode()
            }
            Response::Goaway { reason } => obj(vec![
                ("kind", Json::Str("goaway".into())),
                ("reason", Json::Str(reason.clone())),
            ])
            .encode(),
        }
    }

    /// Decode a frame payload (the client side of the conversation).
    pub fn decode(payload: &str) -> Result<Response, String> {
        let v = parse(payload).map_err(|e| format!("response is not valid JSON: {e}"))?;
        let kind = v.get("kind").and_then(Json::as_str).ok_or("missing string field 'kind'")?;
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string field '{name}'"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name).and_then(Json::as_u64).ok_or(format!("missing integer field '{name}'"))
        };
        let bool_field = |name: &str| -> Result<bool, String> {
            v.get(name).and_then(Json::as_bool).ok_or(format!("missing bool field '{name}'"))
        };
        // Trace-id echoes are optional on decode so frames from
        // pre-tracing servers still parse (they read back as empty).
        let request_echo = || -> String {
            v.get("request").and_then(Json::as_str).unwrap_or("").to_string()
        };
        match kind {
            "function" => Ok(Response::Function(FunctionFrame {
                name: str_field("name")?,
                request: request_echo(),
                cached: bool_field("cached")?,
                faults: u64_field("faults")?,
                rolled_back: bool_field("rolled_back")?,
            })),
            "done" => Ok(Response::Done(DoneFrame {
                status: str_field("status")?,
                idempotency: str_field("idempotency")?,
                request: request_echo(),
                module_text: str_field("module")?,
                reused: u64_field("reused")?,
                fresh: u64_field("fresh")?,
                faults: u64_field("faults")?,
                rollbacks: u64_field("rollbacks")?,
                quarantined: u64_field("quarantined")?,
                inconclusive: u64_field("inconclusive")?,
                client_quarantined: bool_field("client_quarantined")?,
            })),
            "error" => {
                let label = str_field("code")?;
                let code = ErrorCode::from_label(&label)
                    .ok_or(format!("unknown error code {label:?}"))?;
                Ok(Response::Error {
                    code,
                    message: str_field("message")?,
                    request: request_echo(),
                })
            }
            "metrics" => Ok(Response::Metrics { body: str_field("body")? }),
            "stats" => {
                let counters = match v.get("counters") {
                    Some(Json::Obj(fields)) => fields
                        .iter()
                        .map(|(k, val)| {
                            val.as_u64()
                                .map(|n| (k.clone(), n))
                                .ok_or(format!("counter {k:?} is not an integer"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err("missing object field 'counters'".into()),
                };
                Ok(Response::Stats(counters))
            }
            "ack" => Ok(Response::Ack { what: str_field("what")? }),
            "goaway" => Ok(Response::Goaway { reason: str_field("reason")? }),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_roundtrip_and_eof_is_clean_only_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"a":1}"#).unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(r#"{"a":1}"#));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second"));
        assert!(read_frame(&mut r).unwrap().is_none(), "boundary EOF is clean");
    }

    #[test]
    fn torn_frames_are_torn_not_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello frame").unwrap();
        // Cut the stream at every possible byte: everything after the
        // full frame minus one is Torn; the empty stream is clean EOF.
        for cut in 1..buf.len() {
            let mut r = BufReader::new(&buf[..cut]);
            match read_frame(&mut r) {
                Err(FrameError::Torn) => {}
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_prefixes_are_rejected() {
        for bad in ["x\npayload\n", "-3\nabc\n", "99999999999999999999\n"] {
            let mut r = BufReader::new(bad.as_bytes());
            assert!(
                matches!(read_frame(&mut r), Err(FrameError::Malformed(_))),
                "{bad:?} should be malformed"
            );
        }
        let oversized = format!("{}\n", MAX_FRAME_BYTES + 1);
        let mut r = BufReader::new(oversized.as_bytes());
        assert!(matches!(read_frame(&mut r), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Optimize(OptimizeRequest {
                client: "ci".into(),
                level: "distribution".into(),
                policy: "best-effort".into(),
                deadline_ms: Some(5000),
                idempotency: "abc123".into(),
                request: "feedbeef00000001".into(),
                module_text: "function f()\nbegin\nreturn 1\nend\n".into(),
            }),
            Request::Optimize(OptimizeRequest {
                client: String::new(),
                level: "partial".into(),
                policy: "retry-then-skip".into(),
                deadline_ms: None,
                idempotency: String::new(),
                request: String::new(),
                module_text: String::new(),
            }),
            Request::Stats,
            Request::Metrics { format: "text".into() },
            Request::Metrics { format: "json".into() },
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn request_decode_rejects_garbage() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode(r#"{"kind":"optimize"}"#).is_err(), "missing version");
        assert!(Request::decode(r#"{"v":999,"kind":"ping"}"#).is_err(), "bad version");
        assert!(Request::decode(r#"{"v":1,"kind":"destroy"}"#).is_err(), "unknown kind");
        assert!(
            Request::decode(r#"{"v":1,"kind":"optimize","client":"x"}"#).is_err(),
            "missing fields"
        );
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Function(FunctionFrame {
                name: "tri".into(),
                request: "feedbeef00000001".into(),
                cached: true,
                faults: 0,
                rolled_back: false,
            }),
            Response::Done(DoneFrame {
                status: "clean".into(),
                idempotency: "k".into(),
                request: "feedbeef00000001".into(),
                module_text: "module text\n".into(),
                reused: 3,
                fresh: 2,
                faults: 0,
                rollbacks: 0,
                quarantined: 0,
                inconclusive: 1,
                client_quarantined: false,
            }),
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
                request: String::new(),
            },
            Response::Metrics { body: "# TYPE epre_requests_total counter\n".into() },
            Response::Stats(vec![("requests".into(), 7), ("cache_hits".into(), 3)]),
            Response::Ack { what: "pong".into() },
            Response::Goaway { reason: "idle-timeout".into() },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn goaway_is_terminal_and_typed() {
        let g = Response::Goaway { reason: "max-requests".into() };
        assert!(g.is_terminal());
        let payload = g.encode();
        assert!(payload.contains(r#""kind":"goaway""#));
        assert!(payload.contains(r#""reason":"max-requests""#));
        assert!(Response::decode(r#"{"kind":"goaway"}"#).is_err(), "reason is mandatory");
    }

    #[test]
    fn frames_without_request_echo_still_decode() {
        // A pre-tracing peer's frames carry no `request` field; they
        // must decode with an empty id, not error.
        let done = r#"{"kind":"done","status":"clean","idempotency":"k","reused":0,"fresh":1,"faults":0,"rollbacks":0,"quarantined":0,"inconclusive":0,"client_quarantined":false,"module":"m"}"#;
        match Response::decode(done).unwrap() {
            Response::Done(d) => assert_eq!(d.request, ""),
            other => panic!("{other:?}"),
        }
        let fun = r#"{"kind":"function","name":"f","cached":false,"faults":0,"rolled_back":false}"#;
        match Response::decode(fun).unwrap() {
            Response::Function(f) => assert_eq!(f.request, ""),
            other => panic!("{other:?}"),
        }
        let err = r#"{"kind":"error","code":"parse","message":"no"}"#;
        match Response::decode(err).unwrap() {
            Response::Error { request, .. } => assert_eq!(request, ""),
            other => panic!("{other:?}"),
        }
        // Same tolerance on the request side: an optimize frame without
        // `request` decodes with an empty id, and a bare metrics request
        // defaults to the text render.
        match Request::decode(r#"{"v":1,"kind":"metrics"}"#).unwrap() {
            Request::Metrics { format } => assert_eq!(format, "text"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn request_id_is_content_derived_and_client_salted() {
        let a = OptimizeRequest {
            client: "alice".into(),
            level: "distribution".into(),
            policy: "best-effort".into(),
            deadline_ms: None,
            idempotency: String::new(),
            request: String::new(),
            module_text: "function f()\nbegin\nreturn 1\nend\n".into(),
        };
        let id = a.request_id();
        assert_eq!(id.len(), 16);
        assert_eq!(id, a.request_id(), "stable across retries");
        // Unlike the idempotency key, the request id distinguishes
        // clients: two tenants submitting the same module are two
        // requests in the server's account.
        let mut b = a.clone();
        b.client = "bob".into();
        assert_eq!(a.idempotency_key(), b.idempotency_key());
        assert_ne!(id, b.request_id());
        // And it remains content-derived: different module, different id.
        b.client = "alice".into();
        b.module_text.push('\n');
        assert_ne!(id, b.request_id());
    }

    #[test]
    fn idempotency_key_is_content_derived_and_stable() {
        let mut a = OptimizeRequest {
            client: "alice".into(),
            level: "distribution".into(),
            policy: "best-effort".into(),
            deadline_ms: Some(1000),
            idempotency: String::new(),
            request: String::new(),
            module_text: "function f()\nbegin\nreturn 1\nend\n".into(),
        };
        let k1 = a.idempotency_key();
        assert_eq!(k1.len(), 16);
        // Client identity does not change the answer, but module text,
        // level, and deadline do.
        let mut b = a.clone();
        b.client = "bob".into();
        assert_eq!(k1, b.idempotency_key());
        b.module_text.push('\n');
        assert_ne!(k1, b.idempotency_key());
        a.level = "partial".into();
        assert_ne!(k1, a.idempotency_key());
    }

    #[test]
    fn retryability_is_overload_only() {
        assert!(ErrorCode::Overloaded.retryable());
        for code in
            [ErrorCode::Deadline, ErrorCode::Quarantined, ErrorCode::Parse, ErrorCode::Protocol]
        {
            assert!(!code.retryable(), "{:?}", code);
            assert_eq!(ErrorCode::from_label(code.label()), Some(code));
        }
    }
}
