//! Measurement helpers: run a routine under every optimization level and
//! collect the paper's metrics.

use epre_interp::{ExecError, Interpreter, OpCounts, Value};
use epre_ir::Module;

use crate::pipeline::{OptLevel, Optimizer};

/// One routine measured at one optimization level.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The level measured.
    pub level: OptLevel,
    /// Dynamic operation counts (Table 1's metric).
    pub counts: OpCounts,
    /// Static operation count of the optimized code.
    pub static_ops: usize,
    /// The computed result, for cross-level equivalence checking.
    pub result: Option<Value>,
}

/// Optimize `module` at `level` and execute `entry(args)`.
///
/// # Errors
/// Propagates interpreter failures (the unoptimized program misbehaving).
pub fn measure(
    module: &Module,
    level: OptLevel,
    entry: &str,
    args: &[Value],
) -> Result<Measurement, ExecError> {
    let optimized = Optimizer::new(level).optimize(module);
    let mut interp = Interpreter::new(&optimized);
    let result = interp.run(entry, args)?;
    Ok(Measurement {
        level,
        counts: interp.counts(),
        static_ops: optimized.static_op_count(),
        result,
    })
}

/// Measure `entry(args)` at every paper level, verifying that all levels
/// agree on the result (floats compared with a relative tolerance, since
/// reassociation legitimately changes rounding).
///
/// # Errors
/// Propagates interpreter failures.
///
/// # Panics
/// Panics if two levels disagree beyond tolerance — that is a *bug* in a
/// pass, and the benchmark harness must not silently report numbers from
/// miscompiled code.
pub fn measure_module(
    module: &Module,
    entry: &str,
    args: &[Value],
) -> Result<Vec<Measurement>, ExecError> {
    let mut out = Vec::new();
    for level in OptLevel::PAPER_LEVELS {
        out.push(measure(module, level, entry, args)?);
    }
    let baseline = out[0].result;
    for m in &out[1..] {
        assert!(
            results_agree(baseline, m.result),
            "{entry}: {} result {:?} differs from baseline {:?}",
            m.level.label(),
            m.result,
            baseline
        );
    }
    Ok(out)
}

/// Result agreement: exact for integers, relative 1e-6 for floats
/// (reassociation reorders float arithmetic, as FORTRAN permits).
pub fn results_agree(a: Option<Value>, b: Option<Value>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(Value::Int(x)), Some(Value::Int(y))) => x == y,
        (Some(Value::Float(x)), Some(Value::Float(y))) => {
            if x == y {
                return true;
            }
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-6 * scale
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_frontend::{compile, NamingMode};

    #[test]
    fn measure_reports_all_levels() {
        let src = "function f(a, b)\nreal a, b\nbegin\nreturn a * b + a * b\nend\n";
        let m = compile(src, NamingMode::Disciplined).unwrap();
        let ms =
            measure_module(&m, "f", &[Value::Float(3.0), Value::Float(4.0)]).unwrap();
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0].level, OptLevel::Baseline);
        assert!(ms.iter().all(|m| m.result == Some(Value::Float(24.0))));
        // PRE removes the duplicated a*b.
        assert!(ms[1].counts.total <= ms[0].counts.total);
    }

    #[test]
    fn tolerance_comparison() {
        assert!(results_agree(Some(Value::Float(1.0)), Some(Value::Float(1.0 + 1e-12))));
        assert!(!results_agree(Some(Value::Float(1.0)), Some(Value::Float(1.1))));
        assert!(results_agree(Some(Value::Int(3)), Some(Value::Int(3))));
        assert!(!results_agree(Some(Value::Int(3)), Some(Value::Float(3.0))));
        assert!(results_agree(None, None));
    }
}
