//! # epre — Effective Partial Redundancy Elimination
//!
//! A faithful, complete reproduction of **Briggs & Cooper, "Effective
//! Partial Redundancy Elimination", PLDI 1994**: global reassociation and
//! partition-based global value numbering as *enabling transformations*
//! that make partial redundancy elimination dramatically more effective.
//!
//! This crate is the user-facing driver. It wires the passes of
//! [`epre_passes`] into the paper's four optimization levels
//! ([`OptLevel`]), runs them over ILOC modules produced by the
//! mini-FORTRAN front end ([`epre_frontend`]), and measures results with
//! the dynamic-operation-counting interpreter ([`epre_interp`]) — the same
//! metric as the paper's Table 1.
//!
//! ```
//! use epre::{Optimizer, OptLevel};
//! use epre_frontend::{compile, NamingMode};
//! use epre_interp::{Interpreter, Value};
//!
//! let src = "function foo(y, z)\n\
//!            real y, z, s, x\n\
//!            integer i\n\
//!            begin\n\
//!            s = 0\n\
//!            x = y + z\n\
//!            do i = x, 100\n\
//!              s = i + s + x\n\
//!            enddo\n\
//!            return s\nend\n";
//! let module = compile(src, NamingMode::Disciplined).unwrap();
//!
//! let baseline = Optimizer::new(OptLevel::Baseline).optimize(&module);
//! let pre = Optimizer::new(OptLevel::Partial).optimize(&module);
//!
//! let args = [Value::Float(1.0), Value::Float(2.0)];
//! let mut ib = Interpreter::new(&baseline);
//! let mut ip = Interpreter::new(&pre);
//! assert_eq!(ib.run("foo", &args).unwrap(), ip.run("foo", &args).unwrap());
//! // The whole point of the paper: fewer dynamic operations.
//! assert!(ip.counts().total < ib.counts().total);
//! ```

pub mod fault;
pub mod pipeline;
pub mod request;
pub mod shards;
pub mod stages;
pub mod stats;
pub mod timings;
pub mod trace;
pub mod verify_each;

pub use epre_passes::{Budget, BudgetExceeded, BudgetKind};
pub use fault::{FaultKind, PassFault};
pub use request::RequestBudget;
pub use shards::WorkShards;
pub use pipeline::{run_pass_budgeted, run_pass_cached, run_pass_checked, OptLevel, Optimizer};
pub use stages::{run_staged, try_run_staged, Stage, StagedOutput};
pub use stats::{measure, measure_module, Measurement};
pub use timings::{ModuleTimings, PassTiming};
pub use trace::{opcode_histogram, optimize_function_traced, run_pass_traced};
pub use verify_each::{run_passes_verified, PassBlame, PipelineViolation};
