//! The traced pipeline: structured pass spans, transformation
//! provenance, and deterministic parallel trace merging.
//!
//! This is the same pipeline as [`crate::pipeline`], with a
//! [`FunctionTrace`] threaded through it. Every pass invocation emits
//!
//! * a `span` event carrying the pass's change report, the static
//!   operation counts around it, and the counters the pass reported
//!   about its own work (via [`Pass::run_instrumented`]), and
//! * a `provenance` event carrying the opcode-keyed eliminated/inserted
//!   delta ([`OpcodeDelta`]) that [`epre_telemetry::ledgers_from_trace`]
//!   reassembles into per-function accounts for `epre explain`.
//!
//! A final per-function `cache` event reports the [`AnalysisCache`]
//! hit/miss totals.
//!
//! ## Determinism
//!
//! Virtual span durations are derived from input size (`1 + ops_before`)
//! rather than the clock, lanes are keyed by module position rather than
//! worker thread, and the merge concatenates lanes in module order — so
//! the exported trace is byte-identical at `--jobs 1/2/8`. Wall-clock
//! time is recorded on the events only when `wall` is requested (the
//! `--timings` path) and is never exported.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use epre_analysis::AnalysisCache;
use epre_ir::{Function, Inst, Module, Terminator};
use epre_passes::{Budget, Pass, PassCounters};
use epre_telemetry::{FunctionTrace, OpcodeDelta, Trace, Tracer, Value};

use crate::fault::PassFault;
use crate::pipeline::{panic_payload, Optimizer};

/// Opcode histogram of a function's static operations, keyed by the
/// textual mnemonic (terminators count as `jump`/`cbr`/`ret`). The total
/// over all keys equals [`Function::static_op_count`], which is what
/// makes the provenance conservation law hold by construction.
pub fn opcode_histogram(f: &Function) -> BTreeMap<String, u64> {
    let mut h: BTreeMap<String, u64> = BTreeMap::new();
    let mut bump = |k: &str| *h.entry(k.to_string()).or_insert(0) += 1;
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::Bin { op, .. } => bump(op.mnemonic()),
                Inst::Un { op, .. } => bump(op.mnemonic()),
                Inst::LoadI { .. } => bump("loadi"),
                Inst::Copy { .. } => bump("copy"),
                Inst::Load { .. } => bump("load"),
                Inst::Store { .. } => bump("store"),
                Inst::Call { .. } => bump("call"),
                Inst::Phi { .. } => bump("phi"),
            }
        }
        match &block.term {
            Terminator::Jump { .. } => bump("jump"),
            Terminator::Branch { .. } => bump("cbr"),
            Terminator::Return { .. } => bump("ret"),
        }
    }
    h
}

/// Run one pass over `f` with tracing: [`crate::run_pass_budgeted`] plus
/// a `span` and a `provenance` event recorded into `trace`. When `wall`
/// is set the span also carries measured wall-clock nanoseconds (never
/// exported; the `--timings` aggregation reads them back).
///
/// # Errors
/// A [`PassFault`] with kind `budget` or `verify`, exactly as
/// [`crate::run_pass_budgeted`].
pub fn run_pass_traced(
    pass: &dyn Pass,
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
    trace: &mut FunctionTrace,
    wall: bool,
) -> Result<bool, PassFault> {
    let before = opcode_histogram(f);
    let ops_before = f.static_op_count() as u64;
    let mut counters = PassCounters::new();
    let t0 = wall.then(Instant::now);
    let changed = match pass.run_instrumented(f, cache, budget, &mut counters) {
        Ok(changed) => changed,
        Err(e) => return Err(PassFault::budget(pass.name(), &f.name, e)),
    };
    let wall_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
    if cfg!(debug_assertions) {
        if let Err(e) = f.verify() {
            return Err(PassFault::verify(pass.name(), &f.name, e.to_string()));
        }
        if let Err(e) = cache.validate(f) {
            return Err(PassFault::verify(
                pass.name(),
                &f.name,
                format!("stale analysis cache after pass: {e}"),
            ));
        }
    }
    let after = opcode_histogram(f);
    let ops_after = f.static_op_count() as u64;
    let delta = OpcodeDelta::between(&before, &after);

    let mut fields = vec![
        ("changed".to_string(), Value::Bool(changed)),
        ("ops_before".to_string(), Value::U64(ops_before)),
        ("ops_after".to_string(), Value::U64(ops_after)),
    ];
    if !counters.is_empty() {
        fields.push(("counters".to_string(), counters.to_map()));
    }
    trace.span(pass.name(), 1 + ops_before, wall_ns, fields);
    trace.instant(
        "provenance",
        pass.name(),
        vec![
            ("ops_before".to_string(), Value::U64(ops_before)),
            ("ops_after".to_string(), Value::U64(ops_after)),
            ("eliminated".to_string(), Value::Map(delta.eliminated)),
            ("inserted".to_string(), Value::Map(delta.inserted)),
        ],
    );
    Ok(changed)
}

/// Run the optimizer's full pass sequence over one function, recording
/// the lane's trace. The closing `cache` event carries the function's
/// [`AnalysisCache`] hit/miss totals.
///
/// # Errors
/// The first [`PassFault`] encountered, if any. The partial trace is
/// discarded with the error (the module-level drivers report whole
/// traces only for whole successes).
pub fn optimize_function_traced(
    opt: &Optimizer,
    f: &mut Function,
    lane: u32,
    wall: bool,
) -> Result<FunctionTrace, PassFault> {
    let mut trace = FunctionTrace::new(&f.name, lane);
    let mut cache = AnalysisCache::new();
    for pass in opt.passes() {
        run_pass_traced(pass.as_ref(), f, &mut cache, &opt.budget(), &mut trace, wall)?;
    }
    let stats = cache.stats();
    trace.instant(
        "cache",
        "pipeline",
        vec![
            ("hits".to_string(), Value::U64(stats.hits)),
            ("misses".to_string(), Value::U64(stats.misses)),
        ],
    );
    Ok(trace)
}

impl Optimizer {
    /// Optimize a copy of the module with up to `jobs` worker threads,
    /// additionally producing the merged telemetry [`Trace`].
    ///
    /// The optimized module is byte-identical to
    /// [`Optimizer::try_optimize_jobs`], and the trace is byte-identical
    /// across `jobs` values: lanes are keyed by module position and
    /// merged in module order, and all exported numbers are virtual.
    /// `wall` forces the serial path (per-pass wall-clock attribution
    /// across workers would perturb what it measures) and records real
    /// nanoseconds on the events for the `--timings` aggregation.
    ///
    /// # Errors
    /// The first [`PassFault`] in module function order.
    pub fn try_optimize_traced(
        &self,
        module: &Module,
        jobs: usize,
        wall: bool,
    ) -> Result<(Module, Trace), PassFault> {
        let n = module.functions.len();
        if wall || jobs <= 1 || n <= 1 {
            let mut out = module.clone();
            let mut lanes = Vec::with_capacity(n);
            for (i, f) in out.functions.iter_mut().enumerate() {
                lanes.push(optimize_function_traced(self, f, i as u32, wall)?);
            }
            return Ok((out, Trace::from_lanes(lanes)));
        }
        let shards = crate::shards::WorkShards::new(n, jobs.min(n));
        type Slot = Mutex<Option<Result<(Function, FunctionTrace), PassFault>>>;
        let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for w in 0..jobs.min(n) {
                let (shards, slots) = (&shards, &slots);
                s.spawn(move || {
                    while let Some(i) = shards.pop(w) {
                        let src = &module.functions[i];
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let mut f = src.clone();
                            optimize_function_traced(self, &mut f, i as u32, false)
                                .map(|trace| (f, trace))
                        }))
                        .unwrap_or_else(|payload| {
                            Err(PassFault::panic("pipeline", &src.name, panic_payload(payload)))
                        });
                        *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                    }
                });
            }
        });
        let mut out = module.clone();
        out.functions.clear();
        let mut lanes = Vec::with_capacity(n);
        for slot in slots {
            let r = slot.into_inner().expect("result slot poisoned").expect("worker filled slot");
            let (f, trace) = r?;
            out.functions.push(f);
            lanes.push(trace);
        }
        Ok((out, Trace::from_lanes(lanes)))
    }

    /// Optimize a copy of the module with tracing, panicking on faults.
    ///
    /// See [`Optimizer::try_optimize_traced`] for the determinism
    /// guarantees.
    pub fn optimize_traced(&self, module: &Module, jobs: usize) -> (Module, Trace) {
        match self.try_optimize_traced(module, jobs, false) {
            Ok(pair) => pair,
            Err(fault) => panic!("{fault}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::OptLevel;
    use epre_frontend::{compile, NamingMode};
    use epre_telemetry::ledgers_from_trace;

    const FOO: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    #[test]
    fn histogram_totals_match_static_op_count() {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        for f in &m.functions {
            let h = opcode_histogram(f);
            let total: u64 = h.values().sum();
            assert_eq!(total, f.static_op_count() as u64, "{h:?}");
        }
    }

    #[test]
    fn traced_output_matches_untraced() {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        for level in OptLevel::PAPER_LEVELS {
            let opt = Optimizer::new(level);
            let plain = opt.optimize(&m);
            let (traced, trace) = opt.optimize_traced(&m, 1);
            assert_eq!(format!("{plain}"), format!("{traced}"), "{level:?}");
            assert!(!trace.events.is_empty());
            // One span + one provenance per pass, one cache event.
            let spans = trace.events.iter().filter(|e| e.kind == "span").count();
            assert_eq!(spans, opt.passes().len());
            let provs = trace.events.iter().filter(|e| e.kind == "provenance").count();
            assert_eq!(provs, spans);
            assert_eq!(trace.events.iter().filter(|e| e.kind == "cache").count(), 1);
        }
    }

    #[test]
    fn span_counters_report_pass_work() {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        let (_, trace) =
            Optimizer::new(OptLevel::Distribution).optimize_traced(&m, 1);
        let pre_span = trace
            .events
            .iter()
            .find(|e| e.kind == "span" && e.pass == "pre")
            .expect("pre span present");
        let counters = pre_span.field_map("counters").expect("pre reports counters");
        assert!(
            counters.iter().any(|(n, _)| n == "exprs_hoisted"),
            "{counters:?}"
        );
        let reas = trace
            .events
            .iter()
            .find(|e| e.kind == "span" && e.pass == "reassociate+distribute")
            .expect("reassociate span present");
        let counters = reas.field_map("counters").expect("reassociate reports counters");
        assert!(counters.iter().any(|(n, _)| n == "regs_ranked"), "{counters:?}");
    }

    #[test]
    fn ledgers_from_traced_run_conserve() {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        let (out, trace) =
            Optimizer::new(OptLevel::Distribution).optimize_traced(&m, 1);
        let ledgers = ledgers_from_trace(&trace);
        assert_eq!(ledgers.len(), m.functions.len());
        for (ledger, (fin, fout)) in
            ledgers.iter().zip(m.functions.iter().zip(&out.functions))
        {
            assert_eq!(ledger.function, fin.name);
            assert_eq!(ledger.ops_before, fin.static_op_count() as u64);
            assert_eq!(ledger.ops_after, fout.static_op_count() as u64);
            assert!(ledger.conserves(), "{}", ledger.render());
        }
    }

    #[test]
    fn parallel_trace_is_byte_identical_to_serial() {
        let mut module = compile(FOO, NamingMode::Disciplined).unwrap();
        let template = module.functions[0].clone();
        for i in 1..5 {
            let mut f = template.clone();
            f.name = format!("foo{i}");
            module.functions.push(f);
        }
        let opt = Optimizer::new(OptLevel::Distribution);
        let (serial_m, serial_t) = opt.optimize_traced(&module, 1);
        for jobs in [2, 4, 8] {
            let (m, t) = opt.optimize_traced(&module, jobs);
            assert_eq!(format!("{serial_m}"), format!("{m}"), "jobs {jobs}");
            assert_eq!(serial_t.to_jsonl(), t.to_jsonl(), "jobs {jobs}");
            assert_eq!(serial_t.to_chrome(), t.to_chrome(), "jobs {jobs}");
        }
    }
}
