//! Wall-clock instrumentation of the pipeline: the `--timings` CLI mode
//! and the `throughput` benchmark are both built on this module.
//!
//! The paper reports *dynamic operation counts* (Table 1); this module
//! measures the optimizer itself — how long each pass takes, how often it
//! reports a change, and how well the per-function `AnalysisCache`
//! avoids recomputing CFGs, orders, dominators, and expression universes.
//! Timing is serial by construction (per-pass attribution across worker
//! threads would perturb the numbers it reports); module-level parallel
//! speedups are measured end-to-end by the benchmark instead.
//!
//! Since the telemetry layer landed, this module is an *aggregation view*
//! over the traced pipeline ([`Optimizer::try_optimize_traced`] with wall
//! clocks enabled): the spans already carry measured nanoseconds, change
//! reports, and cache totals, and this module folds them into the same
//! [`ModuleTimings`] report (text and JSON formats unchanged) the
//! `--timings` flag has always printed.

use std::fmt;
use std::time::{Duration, Instant};

use epre_analysis::CacheStats;
use epre_ir::Module;

use crate::fault::PassFault;
use crate::pipeline::Optimizer;

/// Accumulated wall-clock cost of one pass across every function of a
/// module.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// The pass name, as reported by [`epre_passes::Pass::name`].
    pub pass: &'static str,
    /// Total time spent inside the pass (including its debug-build
    /// verification when enabled).
    pub duration: Duration,
    /// How many functions the pass ran over.
    pub invocations: usize,
    /// In how many of those invocations the pass reported a change.
    pub changed: usize,
    /// Fixed-point rounds the pass self-reported across all invocations
    /// (0 for passes that do not report a `rounds` counter).
    pub rounds: u64,
}

/// The timing report for one full pipeline run over a module.
#[derive(Debug, Clone)]
pub struct ModuleTimings {
    /// The optimization level's column label.
    pub level: &'static str,
    /// How many functions the module has.
    pub functions: usize,
    /// End-to-end wall time for the whole module.
    pub total: Duration,
    /// Per-pass breakdown, in pipeline order.
    pub passes: Vec<PassTiming>,
    /// Analysis-cache hit/miss tallies summed over all functions.
    pub cache: CacheStats,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl ModuleTimings {
    /// Render the report as a small JSON object (hand-rolled: the
    /// workspace carries no serialization dependency). Durations are in
    /// milliseconds.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"level\":\"{}\",\"functions\":{},\"total_ms\":{:.3},",
            self.level, self.functions, ms(self.total)
        ));
        s.push_str(&format!(
            "\"cache\":{{\"hits\":{},\"misses\":{}}},\"passes\":[",
            self.cache.hits, self.cache.misses
        ));
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"pass\":\"{}\",\"ms\":{:.3},\"invocations\":{},\"changed\":{},\"rounds\":{}}}",
                p.pass,
                ms(p.duration),
                p.invocations,
                p.changed,
                p.rounds
            ));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for ModuleTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "level {}: {} function(s), {:.3} ms total, cache {} hit(s) / {} miss(es)",
            self.level,
            self.functions,
            ms(self.total),
            self.cache.hits,
            self.cache.misses
        )?;
        for p in &self.passes {
            write!(
                f,
                "  {:<24} {:>9.3} ms  ({} run(s), {} changed",
                p.pass,
                ms(p.duration),
                p.invocations,
                p.changed
            )?;
            if p.rounds > 0 {
                write!(f, ", {} round(s)", p.rounds)?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

impl Optimizer {
    /// Optimize a copy of the module serially, timing every pass, and
    /// report a typed fault instead of panicking.
    ///
    /// The optimized output is identical to [`Optimizer::try_optimize`];
    /// only the bookkeeping differs.
    ///
    /// # Errors
    /// The first [`PassFault`] found in any function.
    pub fn try_optimize_timed(&self, module: &Module) -> Result<(Module, ModuleTimings), PassFault> {
        let mut timings: Vec<PassTiming> = self
            .passes()
            .iter()
            .map(|p| PassTiming {
                pass: p.name(),
                duration: Duration::ZERO,
                invocations: 0,
                changed: 0,
                rounds: 0,
            })
            .collect();
        let mut cache_totals = CacheStats::default();
        let start = Instant::now();
        // Serial traced run with wall clocks on: the spans carry the
        // per-pass nanoseconds and change reports this view aggregates.
        let (out, trace) = self.try_optimize_traced(module, 1, true)?;
        let total = start.elapsed();
        for e in &trace.events {
            match e.kind.as_str() {
                "span" => {
                    let timing = timings
                        .iter_mut()
                        .find(|t| t.pass == e.pass)
                        .expect("span names a pipeline pass");
                    timing.duration += Duration::from_nanos(e.wall_ns);
                    timing.invocations += 1;
                    timing.changed += usize::from(e.field_bool("changed").unwrap_or(false));
                    if let Some(counters) = e.field_map("counters") {
                        if let Some((_, r)) = counters.iter().find(|(k, _)| k == "rounds") {
                            timing.rounds += *r;
                        }
                    }
                }
                "cache" => {
                    cache_totals.merge(CacheStats {
                        hits: e.field_u64("hits").unwrap_or(0),
                        misses: e.field_u64("misses").unwrap_or(0),
                    });
                }
                _ => {}
            }
        }
        // Micro-assertion on the profile itself: every coalesce invocation
        // performs at least one interference scan (the batch proving the
        // fixed point counts), and the pass must report those rounds —
        // a coalesce row with fewer rounds than invocations means the
        // counter wiring regressed.
        if let Some(c) = timings.iter().find(|t| t.pass == "coalesce") {
            assert!(
                c.rounds >= c.invocations as u64,
                "coalesce must report round counts in --timings: {} round(s) over {} invocation(s)",
                c.rounds,
                c.invocations
            );
        }
        Ok((
            out,
            ModuleTimings {
                level: self.level().label(),
                functions: module.functions.len(),
                total,
                passes: timings,
                cache: cache_totals,
            },
        ))
    }

    /// Optimize a copy of the module serially, timing every pass.
    ///
    /// See [`Optimizer::try_optimize_timed`] for the non-panicking route.
    pub fn optimize_timed(&self, module: &Module) -> (Module, ModuleTimings) {
        match self.try_optimize_timed(module) {
            Ok(pair) => pair,
            Err(fault) => panic!("{fault}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::OptLevel;
    use epre_frontend::{compile, NamingMode};

    const FOO: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    #[test]
    fn timed_run_matches_plain_and_reports_every_pass() {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        let opt = Optimizer::new(OptLevel::Distribution);
        let (timed, report) = opt.optimize_timed(&m);
        let plain = opt.optimize(&m);
        assert_eq!(format!("{timed}"), format!("{plain}"), "timing must not change the output");
        assert_eq!(report.level, "distribution");
        assert_eq!(report.functions, 1);
        assert_eq!(report.passes.len(), opt.passes().len());
        assert!(report.passes.iter().all(|p| p.invocations == 1));
        assert!(report.total >= report.passes.iter().map(|p| p.duration).sum());
        assert!(report.cache.hits + report.cache.misses > 0, "cache was consulted");
        // The round-reporting micro-assertion's positive side: coalesce
        // reported at least one round per invocation.
        let coalesce = report.passes.iter().find(|p| p.pass == "coalesce").unwrap();
        assert!(coalesce.rounds >= coalesce.invocations as u64, "{coalesce:?}");
        let rendered = format!("{report}");
        assert!(rendered.contains("round(s)"), "{rendered}");
    }

    #[test]
    fn json_rendering_is_well_formed_enough() {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        let (_, report) = Optimizer::new(OptLevel::Partial).optimize_timed(&m);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"level\":\"partial\""), "{json}");
        assert!(json.contains("\"passes\":["), "{json}");
        assert!(json.contains("\"pass\":\"pre\""), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }
}
