//! Typed pass faults: the single error route for "a pass broke the IR".
//!
//! §4.2 of the paper concedes that heuristic passes occasionally *degrade*
//! code; this reproduction additionally guarantees they never *break* it.
//! Every way a pass invocation can go wrong — a panic, a structural
//! verifier failure, a new lint violation — is captured as a [`PassFault`]
//! naming the pass, the function, and the evidence. Debug and release
//! builds share this one route: the debug-build verification in
//! [`crate::pipeline`] and [`crate::stages`] produces a `PassFault` and
//! only then panics with its rendering, while the sandbox in
//! `epre-harness` records the same type and rolls the function back.

use std::fmt;

use epre_lint::Diagnostic;
use epre_passes::BudgetExceeded;

use crate::verify_each::PipelineViolation;

/// What went wrong when a pass ran.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// The pass panicked; the payload is the panic message when it was a
    /// string, or a placeholder otherwise.
    Panic(String),
    /// The structural verifier rejected the pass's output.
    Verify(String),
    /// The lint suite found new error-severity violations in the pass's
    /// output (the diff against the pre-pass report).
    Lint(Vec<Diagnostic>),
    /// The pass ran out of its resource budget (deadline, iteration cap,
    /// or growth cap) and was stopped at a cooperative checkpoint.
    Budget(BudgetExceeded),
}

/// A contained failure of one pass invocation on one function.
#[derive(Debug, Clone)]
pub struct PassFault {
    /// The pass (or pipeline stage) being blamed.
    pub pass: String,
    /// The function it was transforming.
    pub function: String,
    /// The evidence.
    pub kind: FaultKind,
}

impl PassFault {
    /// A fault from a caught panic payload.
    pub fn panic(pass: impl Into<String>, function: impl Into<String>, payload: String) -> Self {
        PassFault { pass: pass.into(), function: function.into(), kind: FaultKind::Panic(payload) }
    }

    /// A fault from a structural verifier rejection.
    pub fn verify(pass: impl Into<String>, function: impl Into<String>, error: String) -> Self {
        PassFault { pass: pass.into(), function: function.into(), kind: FaultKind::Verify(error) }
    }

    /// A fault from new lint violations.
    pub fn lint(
        pass: impl Into<String>,
        function: impl Into<String>,
        errors: Vec<Diagnostic>,
    ) -> Self {
        PassFault { pass: pass.into(), function: function.into(), kind: FaultKind::Lint(errors) }
    }

    /// A fault from an exhausted resource budget.
    pub fn budget(
        pass: impl Into<String>,
        function: impl Into<String>,
        exceeded: BudgetExceeded,
    ) -> Self {
        PassFault {
            pass: pass.into(),
            function: function.into(),
            kind: FaultKind::Budget(exceeded),
        }
    }

    /// Short label for the fault category, for report summaries.
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            FaultKind::Panic(_) => "panic",
            FaultKind::Verify(_) => "verify",
            FaultKind::Lint(_) => "lint",
            FaultKind::Budget(_) => "budget",
        }
    }
}

impl fmt::Display for PassFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FaultKind::Panic(p) => {
                write!(f, "pass `{}` panicked in function `{}`: {p}", self.pass, self.function)
            }
            FaultKind::Verify(e) => {
                write!(f, "pass `{}` broke function `{}`: {e}", self.pass, self.function)
            }
            FaultKind::Lint(errors) => {
                writeln!(
                    f,
                    "pass `{}` broke function `{}`: {} new lint violation(s)",
                    self.pass,
                    self.function,
                    errors.len()
                )?;
                for d in errors {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            FaultKind::Budget(e) => {
                write!(
                    f,
                    "pass `{}` exceeded its budget in function `{}`: {e}",
                    self.pass, self.function
                )
            }
        }
    }
}

impl std::error::Error for PassFault {}

impl From<PipelineViolation> for PassFault {
    fn from(v: PipelineViolation) -> Self {
        PassFault::lint(v.pass, v.function, v.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_pass_and_function() {
        let f = PassFault::verify("gvn", "foo", "dangling block b9".into());
        let s = format!("{f}");
        assert!(s.contains("`gvn`") && s.contains("`foo`") && s.contains("b9"), "{s}");
        assert_eq!(f.kind_label(), "verify");
        assert_eq!(PassFault::panic("pre", "f", "boom".into()).kind_label(), "panic");
        assert_eq!(PassFault::lint("dce", "f", vec![]).kind_label(), "lint");
    }
}
