//! Request-scoped budgets: the resource-governance contract between an
//! admission-controlled server and the per-pass [`Budget`] machinery.
//!
//! A serve request arrives with an optional *relative* deadline ("finish
//! within 5000 ms"). Admission stamps it into an absolute instant; by the
//! time a worker dequeues the request, part of that allowance is already
//! spent waiting. [`RequestBudget`] carries both views:
//!
//! * [`RequestBudget::live_budget`] converts **remaining** wall-clock time
//!   into a per-pass [`Budget::deadline`], so the optimizer cooperatively
//!   stops when the client has stopped caring. An expired request yields
//!   `None` — the server sheds it with a typed `deadline` response
//!   instead of burning a pipeline on an answer nobody will read.
//! * [`RequestBudget::keyed_budget`] is the **deterministic** view — the
//!   caps plus the *requested* (not remaining) deadline — used wherever
//!   the budget participates in a cache key or a journal header. Two
//!   retries of one request must produce the same key no matter how long
//!   each sat in the queue.
//!
//! The split is the whole point: live time governs work, requested time
//! names it.

use std::time::{Duration, Instant};

use crate::Budget;

/// One request's resource envelope: deterministic caps plus an absolute
/// wall-clock deadline stamped at admission.
#[derive(Debug, Clone, Copy)]
pub struct RequestBudget {
    /// The deterministic caps (iteration / growth, and any configured
    /// per-pass deadline) the request runs under.
    pub caps: Budget,
    /// The deadline the client asked for, relative to admission. `None`
    /// means the client is willing to wait indefinitely.
    pub requested: Option<Duration>,
    /// When the request was admitted (deadline anchor).
    pub admitted: Instant,
}

impl RequestBudget {
    /// Admit a request now: `caps` for the deterministic dimensions plus
    /// an optional relative deadline in milliseconds.
    pub fn admit(caps: Budget, deadline_ms: Option<u64>) -> RequestBudget {
        RequestBudget {
            caps,
            requested: deadline_ms.map(Duration::from_millis),
            admitted: Instant::now(),
        }
    }

    /// Wall-clock time left before the request's deadline, `None` when
    /// the request has no deadline.
    pub fn remaining(&self) -> Option<Duration> {
        self.requested.map(|d| d.saturating_sub(self.admitted.elapsed()))
    }

    /// Has the deadline already passed? Requests without one never
    /// expire.
    pub fn expired(&self) -> bool {
        self.remaining().is_some_and(|r| r.is_zero())
    }

    /// The budget to actually run under: the caps with
    /// [`Budget::deadline`] tightened to the *remaining* allowance.
    /// Returns `None` when the request is already expired — the caller
    /// must shed it, not start it.
    pub fn live_budget(&self) -> Option<Budget> {
        match self.remaining() {
            None => Some(self.caps),
            Some(r) if r.is_zero() => None,
            Some(r) => {
                let deadline = match self.caps.deadline {
                    Some(d) => d.min(r),
                    None => r,
                };
                Some(Budget { deadline: Some(deadline), ..self.caps })
            }
        }
    }

    /// The deterministic budget for cache keys and journal headers: the
    /// caps with the **requested** deadline, independent of queueing
    /// delay. Identical requests (and their retries) map to identical
    /// keyed budgets.
    pub fn keyed_budget(&self) -> Budget {
        Budget { deadline: self.requested, ..self.caps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_never_expires_and_keeps_caps() {
        let rb = RequestBudget::admit(Budget::governed(), None);
        assert!(!rb.expired());
        assert_eq!(rb.remaining(), None);
        assert_eq!(rb.live_budget(), Some(Budget::governed()));
        assert_eq!(rb.keyed_budget(), Budget::governed());
    }

    #[test]
    fn live_budget_threads_remaining_time_into_the_deadline() {
        let rb = RequestBudget::admit(Budget::governed(), Some(60_000));
        let live = rb.live_budget().expect("a fresh minute-long request is not expired");
        let d = live.deadline.expect("deadline must be set");
        assert!(d <= Duration::from_millis(60_000));
        assert!(d > Duration::from_millis(59_000), "barely any time has passed: {d:?}");
        // The non-deadline caps ride along untouched.
        assert_eq!(live.max_iters, Budget::governed().max_iters);
        assert_eq!(live.max_growth, Budget::governed().max_growth);
    }

    #[test]
    fn expired_request_yields_no_budget() {
        let mut rb = RequestBudget::admit(Budget::governed(), Some(10));
        // Simulate a long queue wait without sleeping: move admission
        // into the past.
        rb.admitted = Instant::now() - Duration::from_millis(50);
        assert!(rb.expired());
        assert_eq!(rb.live_budget(), None, "an expired request must be shed, not run");
    }

    #[test]
    fn keyed_budget_is_queueing_delay_independent() {
        let caps = Budget::governed();
        let mut early = RequestBudget::admit(caps, Some(5_000));
        let mut late = RequestBudget::admit(caps, Some(5_000));
        early.admitted = Instant::now() - Duration::from_millis(1);
        late.admitted = Instant::now() - Duration::from_millis(4_900);
        assert_eq!(early.keyed_budget(), late.keyed_budget());
        assert_eq!(early.keyed_budget().deadline, Some(Duration::from_millis(5_000)));
    }

    #[test]
    fn configured_pass_deadline_is_never_loosened() {
        // A server-side per-pass deadline tighter than the remaining
        // request allowance must win.
        let caps = Budget { deadline: Some(Duration::from_millis(5)), ..Budget::governed() };
        let rb = RequestBudget::admit(caps, Some(60_000));
        let live = rb.live_budget().unwrap();
        assert_eq!(live.deadline, Some(Duration::from_millis(5)));
    }
}
