//! `verify_each` pipeline mode: run the lint suite after every pass and
//! attribute each new violation to the pass that introduced it.
//!
//! The paper's methodology treats every pass as a well-behaved ILOC
//! filter. The plain pipeline only checks that in debug builds, fail-fast,
//! after the fact. This mode makes it a contract: lint the function before
//! the pipeline starts (pre-existing findings belong to the *input*, not
//! to any pass), re-lint after each pass, and diff the reports by
//! diagnostic fingerprint. A pass that introduces a new **error**-severity
//! finding aborts the pipeline with a [`PipelineViolation`] naming the
//! pass, the function, and exactly the violations it introduced; new
//! warnings are collected per pass as [`PassBlame`] entries for quality
//! tracking.

use std::collections::HashSet;
use std::fmt;

use epre_ir::{Function, Module};
use epre_lint::{lint_function, Diagnostic, LintOptions, Severity};
use epre_passes::Pass;

use crate::pipeline::Optimizer;

/// New findings (any severity) first observed right after one pass ran.
#[derive(Debug, Clone)]
pub struct PassBlame {
    /// The pass that introduced the findings.
    pub pass: &'static str,
    /// The findings, in lint order.
    pub diagnostics: Vec<Diagnostic>,
}

/// A pass introduced error-severity lint findings: the IR invariants were
/// broken by that specific pass.
#[derive(Debug, Clone)]
pub struct PipelineViolation {
    /// The function being optimized.
    pub function: String,
    /// The pass being blamed.
    pub pass: &'static str,
    /// The new error-severity findings that pass introduced.
    pub errors: Vec<Diagnostic>,
}

impl fmt::Display for PipelineViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pass `{}` broke function `{}`: {} new violation(s)",
            self.pass,
            self.function,
            self.errors.len()
        )?;
        for d in &self.errors {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PipelineViolation {}

/// Run `passes` over `f` in order, linting after every pass.
///
/// Returns the per-pass blame log of new non-error findings on success.
///
/// # Errors
/// Returns a [`PipelineViolation`] naming the offending pass as soon as a
/// pass introduces an error-severity finding; `f` is left in the broken
/// state that pass produced, for inspection.
pub fn run_passes_verified(
    f: &mut Function,
    passes: &[Box<dyn Pass>],
    opts: &LintOptions,
) -> Result<Vec<PassBlame>, PipelineViolation> {
    let mut seen: HashSet<String> =
        lint_function(f, opts).diagnostics.iter().map(Diagnostic::fingerprint).collect();
    let mut blames = Vec::new();
    for pass in passes {
        pass.run(f);
        let report = lint_function(f, opts);
        let new: Vec<Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| !seen.contains(&d.fingerprint()))
            .cloned()
            .collect();
        let errors: Vec<Diagnostic> =
            new.iter().filter(|d| d.severity() == Severity::Error).cloned().collect();
        if !errors.is_empty() {
            return Err(PipelineViolation { function: f.name.clone(), pass: pass.name(), errors });
        }
        if !new.is_empty() {
            blames.push(PassBlame { pass: pass.name(), diagnostics: new });
        }
        seen = report.diagnostics.iter().map(Diagnostic::fingerprint).collect();
    }
    Ok(blames)
}

impl Optimizer {
    /// [`Optimizer::optimize_function`] in `verify_each` mode: lint after
    /// every pass (invariant rules only — intermediate states legitimately
    /// carry critical edges, dead code, and remaining redundancy).
    ///
    /// # Errors
    /// Returns a [`PipelineViolation`] blaming the first pass that
    /// introduces an invariant violation.
    pub fn optimize_function_verified(
        &self,
        f: &mut Function,
    ) -> Result<Vec<PassBlame>, PipelineViolation> {
        run_passes_verified(f, &self.passes(), &LintOptions::invariants_only())
    }

    /// [`Optimizer::optimize`] in `verify_each` mode.
    ///
    /// # Errors
    /// Returns the first [`PipelineViolation`] found in any function.
    pub fn optimize_verified(&self, module: &Module) -> Result<Module, PipelineViolation> {
        let mut out = module.clone();
        for f in &mut out.functions {
            self.optimize_function_verified(f)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::OptLevel;
    use epre_frontend::{compile, NamingMode};
    use epre_ir::{Inst, Ty};
    use epre_passes::passes::{ConstProp, Dce};

    const FOO: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    #[test]
    fn every_level_is_invariant_clean_on_example() {
        for level in
            [OptLevel::PAPER_LEVELS.as_slice(), &[OptLevel::DistributionLvn]].concat()
        {
            let m = compile(FOO, NamingMode::Disciplined).unwrap();
            let opt = Optimizer::new(level);
            let verified = opt.optimize_verified(&m).expect("no pass breaks invariants");
            // verify_each must not change what the pipeline produces.
            let plain = opt.optimize(&m);
            assert_eq!(format!("{verified}"), format!("{plain}"));
        }
    }

    /// A deliberately broken pass: introduces a read of a register that no
    /// path defines.
    struct UseGhost;
    impl Pass for UseGhost {
        fn name(&self) -> &'static str {
            "use-ghost"
        }
        fn run(&self, f: &mut Function) -> bool {
            let dst = f.new_reg(Ty::Int);
            let ghost = f.new_reg(Ty::Int);
            f.blocks[0].insts.push(Inst::Copy { dst, src: ghost });
            true
        }
    }

    #[test]
    fn injected_invariant_break_is_blamed_on_the_pass() {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        let mut f = m.function("foo").unwrap().clone();
        let passes: Vec<Box<dyn Pass>> =
            vec![Box::new(ConstProp), Box::new(UseGhost), Box::new(Dce)];
        let e = run_passes_verified(&mut f, &passes, &LintOptions::invariants_only())
            .expect_err("the broken pass must be caught");
        assert_eq!(e.pass, "use-ghost", "blame names the culprit: {e}");
        assert_eq!(e.function, "foo");
        assert!(!e.errors.is_empty());
        assert_eq!(e.errors[0].rule.code(), "L020", "{e}");
    }

    /// A pass that does nothing; pre-existing input findings must not be
    /// blamed on it.
    struct Nop;
    impl Pass for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&self, _f: &mut Function) -> bool {
            false
        }
    }

    #[test]
    fn preexisting_violations_belong_to_the_input() {
        // Build a function with a use-before-def already present.
        let mut f = Function::new("broken", None);
        let dst = f.new_reg(Ty::Int);
        let ghost = f.new_reg(Ty::Int);
        let mut blk = epre_ir::Block::new(epre_ir::Terminator::Return { value: None });
        blk.insts.push(Inst::Copy { dst, src: ghost });
        f.add_block(blk);
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Nop)];
        let blames = run_passes_verified(&mut f, &passes, &LintOptions::invariants_only())
            .expect("nop introduced nothing new");
        assert!(blames.is_empty());
    }
}
