//! The optimization pipelines of the paper's experimental study (§4.1).

use epre_ir::{Function, Module};
use epre_passes::passes::{Clean, Coalesce, ConstProp, Dce, Gvn, Lvn, Peephole, Pre, Reassociate};
use epre_passes::Pass;

use crate::fault::PassFault;

/// The paper's four measured optimization levels, plus extension levels
/// used by the ablation benchmarks.
///
/// | level | pipeline |
/// |-------|----------|
/// | `Baseline` | constprop → peephole → dce → coalesce → clean |
/// | `Partial` | **pre** → baseline |
/// | `Reassociation` | **reassociate** → **gvn** → pre → baseline |
/// | `Distribution` | **reassociate+distribute** → gvn → pre → baseline |
/// | `DistributionLvn` | distribution with local value numbering added (the §4.1 "missing pass") |
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum OptLevel {
    /// The paper's `baseline` column.
    Baseline,
    /// The paper's `partial` column: PRE alone.
    Partial,
    /// The paper's `reassociation` column: reassociation (no distribution)
    /// + GVN before PRE.
    Reassociation,
    /// The paper's `distribution` column: reassociation with distribution
    /// + GVN before PRE.
    Distribution,
    /// Extension: `Distribution` plus hash-based local value numbering,
    /// one of the passes §4.1 reports missing.
    DistributionLvn,
}

impl OptLevel {
    /// All levels in the order of the paper's Table 1 columns.
    pub const PAPER_LEVELS: [OptLevel; 4] =
        [OptLevel::Baseline, OptLevel::Partial, OptLevel::Reassociation, OptLevel::Distribution];

    /// The level's column label in the paper.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::Partial => "partial",
            OptLevel::Reassociation => "reassociation",
            OptLevel::Distribution => "distribution",
            OptLevel::DistributionLvn => "distribution+lvn",
        }
    }
}

/// Runs a configured pass pipeline over modules or single functions.
#[derive(Debug, Clone, Copy)]
pub struct Optimizer {
    level: OptLevel,
}

impl Optimizer {
    /// An optimizer for the given level.
    pub fn new(level: OptLevel) -> Self {
        Optimizer { level }
    }

    /// The configured level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// The pass sequence for this level, in execution order.
    pub fn passes(&self) -> Vec<Box<dyn Pass>> {
        let mut seq: Vec<Box<dyn Pass>> = Vec::new();
        match self.level {
            OptLevel::Baseline => {}
            OptLevel::Partial => seq.push(Box::new(Pre)),
            OptLevel::Reassociation => {
                seq.push(Box::new(Reassociate { distribute: false }));
                seq.push(Box::new(Gvn));
                seq.push(Box::new(Pre));
            }
            OptLevel::Distribution => {
                seq.push(Box::new(Reassociate { distribute: true }));
                seq.push(Box::new(Gvn));
                seq.push(Box::new(Pre));
            }
            OptLevel::DistributionLvn => {
                seq.push(Box::new(Reassociate { distribute: true }));
                seq.push(Box::new(Gvn));
                seq.push(Box::new(Pre));
                seq.push(Box::new(Lvn));
            }
        }
        // The baseline sequence closes every level (§4.1: "followed by the
        // sequence of optimizations used to establish the baseline").
        seq.push(Box::new(ConstProp));
        seq.push(Box::new(Peephole));
        seq.push(Box::new(Dce));
        seq.push(Box::new(Coalesce));
        seq.push(Box::new(Clean));
        seq
    }

    /// Optimize one function in place, reporting a typed fault instead of
    /// panicking.
    ///
    /// Debug builds verify the IR after every pass; a violation stops the
    /// pipeline and returns a [`PassFault`] naming the pass, the function,
    /// and the exact verifier error (release builds skip the verification,
    /// as before, but share the same error route). `f` is left in the
    /// faulting pass's broken state for inspection; the sandbox in
    /// `epre-harness` builds rollback on top of this.
    ///
    /// # Errors
    /// The first [`PassFault`] encountered, if any.
    pub fn try_optimize_function(&self, f: &mut Function) -> Result<(), PassFault> {
        for pass in self.passes() {
            run_pass_checked(pass.as_ref(), f)?;
        }
        Ok(())
    }

    /// Optimize one function in place.
    ///
    /// Debug builds verify the IR after every pass; a violation panics
    /// with the [`PassFault`] naming the pass, the function, and the exact
    /// verifier error. For non-panicking variants see
    /// [`Optimizer::try_optimize_function`] (verifier route) and
    /// [`Optimizer::optimize_function_verified`] (lint route with per-pass
    /// blame).
    pub fn optimize_function(&self, f: &mut Function) {
        if let Err(fault) = self.try_optimize_function(f) {
            panic!("{fault}\n{f}");
        }
    }

    /// Optimize a copy of the module, reporting a typed fault instead of
    /// panicking.
    ///
    /// # Errors
    /// The first [`PassFault`] found in any function.
    pub fn try_optimize(&self, module: &Module) -> Result<Module, PassFault> {
        let mut out = module.clone();
        for f in &mut out.functions {
            self.try_optimize_function(f)?;
        }
        Ok(out)
    }

    /// Optimize a copy of the module.
    pub fn optimize(&self, module: &Module) -> Module {
        let mut out = module.clone();
        for f in &mut out.functions {
            self.optimize_function(f);
        }
        out
    }
}

/// Run one pass over `f`, verifying the result in debug builds.
///
/// This is the shared primitive under every pipeline mode: the plain
/// pipeline panics on the returned fault, `verify_each` substitutes the
/// lint suite, and the `epre-harness` sandbox adds `catch_unwind` and
/// rollback around it.
///
/// # Errors
/// A [`PassFault`] with [`FaultKind::Verify`](crate::fault::FaultKind) when
/// the debug-build verifier rejects the pass's output.
pub fn run_pass_checked(pass: &dyn Pass, f: &mut Function) -> Result<(), PassFault> {
    pass.run(f);
    if cfg!(debug_assertions) {
        if let Err(e) = f.verify() {
            return Err(PassFault::verify(pass.name(), &f.name, e.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_frontend::{compile, NamingMode};
    use epre_interp::{Interpreter, Value};

    const FOO: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    fn counts(level: OptLevel) -> (Option<Value>, u64) {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        let opt = Optimizer::new(level).optimize(&m);
        opt.verify().unwrap();
        let mut i = Interpreter::new(&opt);
        let r = i.run("foo", &[Value::Float(1.0), Value::Float(2.0)]).unwrap();
        (r, i.counts().total)
    }

    #[test]
    fn levels_agree_on_results_and_improve_counts() {
        let (r_base, c_base) = counts(OptLevel::Baseline);
        let (r_part, c_part) = counts(OptLevel::Partial);
        let (r_reas, c_reas) = counts(OptLevel::Reassociation);
        let (r_dist, c_dist) = counts(OptLevel::Distribution);
        assert_eq!(r_base, r_part);
        assert_eq!(r_base, r_reas);
        assert_eq!(r_base, r_dist);
        // PRE must help strictly on the running example.
        assert!(c_part < c_base, "partial {c_part} vs baseline {c_base}");
        // On this small scalar loop, reassociation pays φ-copy/jump
        // overhead the later passes cannot recover — the paper's §4.2
        // documents such degradations (Table 1 has −% entries). Bound the
        // regression; the array kernel below shows the winning case.
        assert!(
            c_reas as f64 <= c_part as f64 * 1.4,
            "reassociation {c_reas} vs partial {c_part}"
        );
        assert!(
            c_dist as f64 <= c_reas as f64 * 1.05,
            "distribution {c_dist} vs reassociation {c_reas}"
        );
    }

    /// The paper's motivating case (§2.1): "this case is quite important,
    /// since it arises routinely in multi-dimensional array addressing
    /// computations". Reassociation must beat plain PRE strictly here.
    #[test]
    fn array_addressing_shows_reassociation_win() {
        let src = "function msum()\n\
                   real m(20, 20)\n\
                   integer i, j\n\
                   real s\n\
                   begin\n\
                   do j = 1, 20\n\
                     do i = 1, 20\n\
                       m(i, j) = i + j\n\
                     enddo\n\
                   enddo\n\
                   s = 0\n\
                   do j = 1, 20\n\
                     do i = 1, 20\n\
                       s = s + m(i, j)\n\
                     enddo\n\
                   enddo\n\
                   return s\nend\n";
        let m = compile(src, NamingMode::Disciplined).unwrap();
        let mut totals = Vec::new();
        let mut results = Vec::new();
        for level in OptLevel::PAPER_LEVELS {
            let opt = Optimizer::new(level).optimize(&m);
            opt.verify().unwrap();
            let mut i = Interpreter::new(&opt);
            results.push(i.run("msum", &[]).unwrap());
            totals.push(i.counts().total);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
        let (base, part, reas, dist) = (totals[0], totals[1], totals[2], totals[3]);
        assert!(part < base, "PRE helps: {totals:?}");
        assert!(reas < part, "reassociation helps further: {totals:?}");
        assert!(dist <= part, "distribution stays ahead of partial: {totals:?}");
    }

    #[test]
    fn pass_sequences_match_paper() {
        let names: Vec<&str> =
            Optimizer::new(OptLevel::Distribution).passes().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "reassociate+distribute",
                "gvn",
                "pre",
                "constprop",
                "peephole",
                "dce",
                "coalesce",
                "clean"
            ]
        );
        let names: Vec<&str> =
            Optimizer::new(OptLevel::Baseline).passes().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["constprop", "peephole", "dce", "coalesce", "clean"]);
    }

    #[test]
    fn labels() {
        assert_eq!(OptLevel::Baseline.label(), "baseline");
        assert_eq!(OptLevel::Distribution.label(), "distribution");
        assert_eq!(OptLevel::PAPER_LEVELS.len(), 4);
    }
}
