//! The optimization pipelines of the paper's experimental study (§4.1).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use epre_analysis::AnalysisCache;
use epre_ir::{Function, Module};
use epre_passes::passes::{Clean, Coalesce, ConstProp, Dce, Gvn, Lvn, Peephole, Pre, Reassociate};
use epre_passes::{Budget, Pass};

use crate::fault::PassFault;

/// The paper's four measured optimization levels, plus extension levels
/// used by the ablation benchmarks.
///
/// | level | pipeline |
/// |-------|----------|
/// | `Baseline` | constprop → peephole → dce → coalesce → clean |
/// | `Partial` | **pre** → baseline |
/// | `Reassociation` | **reassociate** → **gvn** → pre → baseline |
/// | `Distribution` | **reassociate+distribute** → gvn → pre → baseline |
/// | `DistributionLvn` | distribution with local value numbering added (the §4.1 "missing pass") |
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum OptLevel {
    /// The paper's `baseline` column.
    Baseline,
    /// The paper's `partial` column: PRE alone.
    Partial,
    /// The paper's `reassociation` column: reassociation (no distribution)
    /// + GVN before PRE.
    Reassociation,
    /// The paper's `distribution` column: reassociation with distribution
    /// + GVN before PRE.
    Distribution,
    /// Extension: `Distribution` plus hash-based local value numbering,
    /// one of the passes §4.1 reports missing.
    DistributionLvn,
}

impl OptLevel {
    /// All levels in the order of the paper's Table 1 columns.
    pub const PAPER_LEVELS: [OptLevel; 4] =
        [OptLevel::Baseline, OptLevel::Partial, OptLevel::Reassociation, OptLevel::Distribution];

    /// The level's column label in the paper.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::Partial => "partial",
            OptLevel::Reassociation => "reassociation",
            OptLevel::Distribution => "distribution",
            OptLevel::DistributionLvn => "distribution+lvn",
        }
    }
}

/// Runs a configured pass pipeline over modules or single functions.
#[derive(Debug, Clone, Copy)]
pub struct Optimizer {
    level: OptLevel,
    budget: Budget,
}

impl Optimizer {
    /// An optimizer for the given level, with an unlimited per-pass
    /// budget (the historical behavior).
    pub fn new(level: OptLevel) -> Self {
        Optimizer { level, budget: Budget::UNLIMITED }
    }

    /// This optimizer with a per-pass-invocation resource budget. Every
    /// pass of every function is held to `budget`; an over-budget pass
    /// stops at its next cooperative checkpoint and surfaces as a
    /// [`PassFault`] with kind `budget`.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured per-pass budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The configured level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// The pass sequence for this level, in execution order.
    pub fn passes(&self) -> Vec<Box<dyn Pass>> {
        let mut seq: Vec<Box<dyn Pass>> = Vec::new();
        match self.level {
            OptLevel::Baseline => {}
            OptLevel::Partial => seq.push(Box::new(Pre)),
            OptLevel::Reassociation => {
                seq.push(Box::new(Reassociate { distribute: false }));
                seq.push(Box::new(Gvn));
                seq.push(Box::new(Pre));
            }
            OptLevel::Distribution => {
                seq.push(Box::new(Reassociate { distribute: true }));
                seq.push(Box::new(Gvn));
                seq.push(Box::new(Pre));
            }
            OptLevel::DistributionLvn => {
                seq.push(Box::new(Reassociate { distribute: true }));
                seq.push(Box::new(Gvn));
                seq.push(Box::new(Pre));
                seq.push(Box::new(Lvn));
            }
        }
        // The baseline sequence closes every level (§4.1: "followed by the
        // sequence of optimizations used to establish the baseline").
        seq.push(Box::new(ConstProp));
        seq.push(Box::new(Peephole));
        seq.push(Box::new(Dce));
        seq.push(Box::new(Coalesce));
        seq.push(Box::new(Clean));
        seq
    }

    /// Optimize one function in place, reporting a typed fault instead of
    /// panicking.
    ///
    /// Debug builds verify the IR after every pass; a violation stops the
    /// pipeline and returns a [`PassFault`] naming the pass, the function,
    /// and the exact verifier error (release builds skip the verification,
    /// as before, but share the same error route). `f` is left in the
    /// faulting pass's broken state for inspection; the sandbox in
    /// `epre-harness` builds rollback on top of this.
    ///
    /// # Errors
    /// The first [`PassFault`] encountered, if any.
    pub fn try_optimize_function(&self, f: &mut Function) -> Result<(), PassFault> {
        let mut cache = AnalysisCache::new();
        for pass in self.passes() {
            run_pass_budgeted(pass.as_ref(), f, &mut cache, &self.budget)?;
        }
        Ok(())
    }

    /// Optimize one function in place.
    ///
    /// Debug builds verify the IR after every pass; a violation panics
    /// with the [`PassFault`] naming the pass, the function, and the exact
    /// verifier error. For non-panicking variants see
    /// [`Optimizer::try_optimize_function`] (verifier route) and
    /// [`Optimizer::optimize_function_verified`] (lint route with per-pass
    /// blame).
    pub fn optimize_function(&self, f: &mut Function) {
        if let Err(fault) = self.try_optimize_function(f) {
            panic!("{fault}\n{f}");
        }
    }

    /// Optimize a copy of the module, reporting a typed fault instead of
    /// panicking.
    ///
    /// # Errors
    /// The first [`PassFault`] found in any function.
    pub fn try_optimize(&self, module: &Module) -> Result<Module, PassFault> {
        let mut out = module.clone();
        for f in &mut out.functions {
            self.try_optimize_function(f)?;
        }
        Ok(out)
    }

    /// Optimize a copy of the module.
    pub fn optimize(&self, module: &Module) -> Module {
        let mut out = module.clone();
        for f in &mut out.functions {
            self.optimize_function(f);
        }
        out
    }

    /// Optimize a copy of the module with up to `jobs` worker threads,
    /// reporting a typed fault instead of panicking.
    ///
    /// Functions are independent compilation units in this pipeline, so
    /// they are distributed over a [`std::thread::scope`] worker pool (no
    /// external dependencies) via work-stealing shards
    /// ([`crate::shards::WorkShards`]): each worker owns a contiguous
    /// chunk of the module and steals from the back of a sibling's shard
    /// when its own runs dry, so one heavyweight function cannot strand
    /// the rest of a chunk behind it. The output is **deterministic**: functions
    /// are reassembled in module order, and the reported fault is the one
    /// belonging to the earliest function in that order — byte-identical
    /// to the serial result regardless of scheduling. `jobs <= 1` takes
    /// the exact serial path. A worker panic (outside the per-pass
    /// verification) is contained with `catch_unwind` and surfaced as a
    /// [`PassFault`] with kind `panic`, so one bad function cannot take
    /// down sibling workers.
    ///
    /// # Errors
    /// The first [`PassFault`] in module function order.
    pub fn try_optimize_jobs(&self, module: &Module, jobs: usize) -> Result<Module, PassFault> {
        let n = module.functions.len();
        if jobs <= 1 || n <= 1 {
            return self.try_optimize(module);
        }
        let shards = crate::shards::WorkShards::new(n, jobs.min(n));
        let slots: Vec<Mutex<Option<Result<Function, PassFault>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for w in 0..jobs.min(n) {
                let (shards, slots) = (&shards, &slots);
                s.spawn(move || {
                    while let Some(i) = shards.pop(w) {
                        let src = &module.functions[i];
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let mut f = src.clone();
                            self.try_optimize_function(&mut f).map(|()| f)
                        }))
                        .unwrap_or_else(|payload| {
                            Err(PassFault::panic("pipeline", &src.name, panic_payload(payload)))
                        });
                        *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                    }
                });
            }
        });
        let mut out = module.clone();
        out.functions.clear();
        for slot in slots {
            let r = slot.into_inner().expect("result slot poisoned").expect("worker filled slot");
            out.functions.push(r?);
        }
        Ok(out)
    }

    /// Optimize a copy of the module with up to `jobs` worker threads.
    ///
    /// See [`Optimizer::try_optimize_jobs`] for the determinism and fault
    /// containment guarantees.
    pub fn optimize_jobs(&self, module: &Module, jobs: usize) -> Module {
        match self.try_optimize_jobs(module, jobs) {
            Ok(out) => out,
            Err(fault) => panic!("{fault}"),
        }
    }
}

/// Render a caught panic payload as a string (best effort).
pub(crate) fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one pass over `f`, verifying the result in debug builds.
///
/// This is the shared primitive under every pipeline mode: the plain
/// pipeline panics on the returned fault, `verify_each` substitutes the
/// lint suite, and the `epre-harness` sandbox adds `catch_unwind` and
/// rollback around it. Returns the pass's change report.
///
/// # Errors
/// A [`PassFault`] with [`FaultKind::Verify`](crate::fault::FaultKind) when
/// the debug-build verifier rejects the pass's output.
pub fn run_pass_checked(pass: &dyn Pass, f: &mut Function) -> Result<bool, PassFault> {
    let mut cache = AnalysisCache::new();
    run_pass_cached(pass, f, &mut cache)
}

/// Run one pass over `f` through a shared [`AnalysisCache`], verifying
/// both the IR and the cache in debug builds.
///
/// This is [`run_pass_checked`] with analysis memoization: the pass runs
/// via [`Pass::run_cached`], which invalidates exactly the analyses the
/// pass does not declare preserved. Debug builds then hold the pass to
/// its word — [`AnalysisCache::validate`] recomputes every cached
/// analysis from scratch and compares; a stale entry means the pass lied
/// about [`Pass::preserves`] (or failed to report a change) and becomes a
/// [`PassFault`] with kind `verify` naming that pass. Release builds skip
/// both checks and keep only the memoization.
///
/// # Errors
/// A [`PassFault`] with [`FaultKind::Verify`](crate::fault::FaultKind)
/// when the debug-build verifier rejects the pass's output, or when the
/// pass left a stale analysis in the cache.
pub fn run_pass_cached(
    pass: &dyn Pass,
    f: &mut Function,
    cache: &mut AnalysisCache,
) -> Result<bool, PassFault> {
    run_pass_budgeted(pass, f, cache, &Budget::UNLIMITED)
}

/// Run one pass over `f` through a shared [`AnalysisCache`], held to a
/// resource [`Budget`] — [`run_pass_cached`] plus the governance layer.
///
/// The pass runs via [`Pass::run_budgeted`], so fixed-point passes stop at
/// their cooperative checkpoints when over budget. A budget trip leaves
/// `f` mid-transform (possibly in SSA form) and is reported as a
/// [`PassFault`] with kind `budget`; the debug-build IR and cache
/// verification is skipped for that outcome, since the half-transformed
/// state is not a claim about correctness. Callers needing all-or-nothing
/// semantics (the `epre-harness` sandbox) run on a clone and roll back,
/// exactly as they do for panics.
///
/// # Errors
/// A [`PassFault`] with kind `budget` when the pass exhausted its budget,
/// or kind `verify` as in [`run_pass_cached`].
pub fn run_pass_budgeted(
    pass: &dyn Pass,
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<bool, PassFault> {
    let changed = match pass.run_budgeted(f, cache, budget) {
        Ok(changed) => changed,
        Err(e) => return Err(PassFault::budget(pass.name(), &f.name, e)),
    };
    if cfg!(debug_assertions) {
        if let Err(e) = f.verify() {
            return Err(PassFault::verify(pass.name(), &f.name, e.to_string()));
        }
        if let Err(e) = cache.validate(f) {
            return Err(PassFault::verify(
                pass.name(),
                &f.name,
                format!("stale analysis cache after pass: {e}"),
            ));
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_frontend::{compile, NamingMode};
    use epre_interp::{Interpreter, Value};

    const FOO: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    fn counts(level: OptLevel) -> (Option<Value>, u64) {
        let m = compile(FOO, NamingMode::Disciplined).unwrap();
        let opt = Optimizer::new(level).optimize(&m);
        opt.verify().unwrap();
        let mut i = Interpreter::new(&opt);
        let r = i.run("foo", &[Value::Float(1.0), Value::Float(2.0)]).unwrap();
        (r, i.counts().total)
    }

    #[test]
    fn levels_agree_on_results_and_improve_counts() {
        let (r_base, c_base) = counts(OptLevel::Baseline);
        let (r_part, c_part) = counts(OptLevel::Partial);
        let (r_reas, c_reas) = counts(OptLevel::Reassociation);
        let (r_dist, c_dist) = counts(OptLevel::Distribution);
        assert_eq!(r_base, r_part);
        assert_eq!(r_base, r_reas);
        assert_eq!(r_base, r_dist);
        // PRE must help strictly on the running example.
        assert!(c_part < c_base, "partial {c_part} vs baseline {c_base}");
        // On this small scalar loop, reassociation pays φ-copy/jump
        // overhead the later passes cannot recover — the paper's §4.2
        // documents such degradations (Table 1 has −% entries). Bound the
        // regression; the array kernel below shows the winning case.
        assert!(
            c_reas as f64 <= c_part as f64 * 1.4,
            "reassociation {c_reas} vs partial {c_part}"
        );
        assert!(
            c_dist as f64 <= c_reas as f64 * 1.05,
            "distribution {c_dist} vs reassociation {c_reas}"
        );
    }

    /// The paper's motivating case (§2.1): "this case is quite important,
    /// since it arises routinely in multi-dimensional array addressing
    /// computations". Reassociation must beat plain PRE strictly here.
    #[test]
    fn array_addressing_shows_reassociation_win() {
        let src = "function msum()\n\
                   real m(20, 20)\n\
                   integer i, j\n\
                   real s\n\
                   begin\n\
                   do j = 1, 20\n\
                     do i = 1, 20\n\
                       m(i, j) = i + j\n\
                     enddo\n\
                   enddo\n\
                   s = 0\n\
                   do j = 1, 20\n\
                     do i = 1, 20\n\
                       s = s + m(i, j)\n\
                     enddo\n\
                   enddo\n\
                   return s\nend\n";
        let m = compile(src, NamingMode::Disciplined).unwrap();
        let mut totals = Vec::new();
        let mut results = Vec::new();
        for level in OptLevel::PAPER_LEVELS {
            let opt = Optimizer::new(level).optimize(&m);
            opt.verify().unwrap();
            let mut i = Interpreter::new(&opt);
            results.push(i.run("msum", &[]).unwrap());
            totals.push(i.counts().total);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
        let (base, part, reas, dist) = (totals[0], totals[1], totals[2], totals[3]);
        assert!(part < base, "PRE helps: {totals:?}");
        assert!(reas < part, "reassociation helps further: {totals:?}");
        assert!(dist <= part, "distribution stays ahead of partial: {totals:?}");
    }

    #[test]
    fn pass_sequences_match_paper() {
        let names: Vec<&str> =
            Optimizer::new(OptLevel::Distribution).passes().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "reassociate+distribute",
                "gvn",
                "pre",
                "constprop",
                "peephole",
                "dce",
                "coalesce",
                "clean"
            ]
        );
        let names: Vec<&str> =
            Optimizer::new(OptLevel::Baseline).passes().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["constprop", "peephole", "dce", "coalesce", "clean"]);
    }

    #[test]
    fn labels() {
        assert_eq!(OptLevel::Baseline.label(), "baseline");
        assert_eq!(OptLevel::Distribution.label(), "distribution");
        assert_eq!(OptLevel::PAPER_LEVELS.len(), 4);
    }

    /// Same module (the running example, replicated under distinct names),
    /// every level, every thread count: the parallel driver must be
    /// byte-identical to the serial one.
    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let mut module = compile(FOO, NamingMode::Disciplined).unwrap();
        let template = module.functions[0].clone();
        for i in 1..7 {
            let mut f = template.clone();
            f.name = format!("foo{i}");
            module.functions.push(f);
        }
        for level in [OptLevel::PAPER_LEVELS.as_slice(), &[OptLevel::DistributionLvn]].concat() {
            let opt = Optimizer::new(level);
            let serial = opt.optimize(&module);
            for jobs in [1, 2, 4, 8] {
                let parallel = opt.optimize_jobs(&module, jobs);
                assert_eq!(
                    format!("{serial}"),
                    format!("{parallel}"),
                    "level {level:?}, jobs {jobs}"
                );
            }
        }
    }

    /// A worker panic is contained as a typed fault; sibling functions are
    /// unaffected and the blamed function is deterministic.
    #[test]
    fn parallel_driver_contains_worker_panics() {
        let module = compile(FOO, NamingMode::Disciplined).unwrap();
        let mut bad = module.clone();
        // A jump to a block the function does not have makes the CFG
        // constructor panic (index out of bounds) inside the first pass.
        let mut f = Function::new("corrupt", None);
        f.add_block(epre_ir::Block::new(epre_ir::Terminator::Jump {
            target: epre_ir::BlockId(7),
        }));
        bad.functions.insert(0, f);
        bad.functions.push(module.functions[0].clone());
        bad.functions.last_mut().unwrap().name = "foo2".into();
        let err = Optimizer::new(OptLevel::Partial)
            .try_optimize_jobs(&bad, 4)
            .expect_err("the corrupt function must fault");
        assert_eq!(err.function, "corrupt");
        assert_eq!(err.kind_label(), "panic");
    }

    /// Cache soundness: a pass that rewires the CFG while claiming (via a
    /// `false` change report) that every analysis is still valid must be
    /// caught by the debug-build cache validation and blamed by name.
    #[cfg(debug_assertions)]
    #[test]
    fn lying_pass_is_caught_by_cache_validation() {
        use epre_ir::Terminator;

        struct Liar;
        impl Pass for Liar {
            fn name(&self) -> &'static str {
                "liar"
            }
            fn run(&self, f: &mut Function) -> bool {
                // Rewire the entry to return directly: the IR still
                // verifies (the old successor is merely unreachable), but
                // any cached CFG is now stale.
                f.blocks[0].term = Terminator::Return { value: None };
                false // the lie: "nothing changed, keep every analysis"
            }
        }

        let mut b = epre_ir::FunctionBuilder::new("victim", None);
        let tail = b.new_block();
        b.jump(tail);
        b.switch_to(tail);
        b.ret(None);
        let mut f = b.finish();

        let mut cache = AnalysisCache::new();
        cache.cfg(&f); // warm the entry the lie will invalidate
        let err = run_pass_cached(&Liar, &mut f, &mut cache)
            .expect_err("stale cache must be detected");
        assert_eq!(err.pass, "liar");
        assert_eq!(err.kind_label(), "verify");
        assert!(format!("{err}").contains("stale analysis cache"), "{err}");
    }

    /// The honest version of the same rewrite reports its change, the
    /// cache drops the stale entries, and the pipeline continues.
    #[test]
    fn honest_change_report_keeps_the_cache_consistent() {
        use epre_ir::Terminator;

        struct Honest;
        impl Pass for Honest {
            fn name(&self) -> &'static str {
                "honest"
            }
            fn run(&self, f: &mut Function) -> bool {
                f.blocks[0].term = Terminator::Return { value: None };
                true
            }
        }

        let mut b = epre_ir::FunctionBuilder::new("victim", None);
        let tail = b.new_block();
        b.jump(tail);
        b.switch_to(tail);
        b.ret(None);
        let mut f = b.finish();

        let mut cache = AnalysisCache::new();
        cache.cfg(&f);
        let changed = run_pass_cached(&Honest, &mut f, &mut cache)
            .expect("an honest pass passes validation");
        assert!(changed);
        assert!(!cache.has_cfg(), "the change report must drop the cached CFG");
    }
}
