//! Work-stealing index distribution for the parallel module drivers.
//!
//! The first parallel drivers handed out function indices through a single
//! `AtomicUsize::fetch_add` — fair, but every worker contends on one cache
//! line, and a worker that draws a string of heavyweight functions cannot
//! shed them. [`WorkShards`] replaces that with per-worker deques seeded
//! with **contiguous chunks** of the index space: each worker drains its
//! own shard from the front (preserving module order locally, which keeps
//! the per-function clone/optimize loop cache-friendly) and, when empty,
//! steals from the **back** of a sibling's shard — so thieves take the
//! work farthest from where the owner is currently operating.
//!
//! Determinism of the drivers is unaffected: results land in per-function
//! slots and are reassembled in module order, so the stealing schedule can
//! never leak into the output. Every index in `0..items` is produced
//! exactly once across all workers.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A sharded work list of indices `0..items` for `workers` cooperating
/// threads.
///
/// ```
/// use epre::WorkShards;
///
/// let shards = WorkShards::new(5, 2);
/// let mut seen: Vec<usize> = std::iter::from_fn(|| shards.pop(0)).collect();
/// seen.sort_unstable();
/// assert_eq!(seen, vec![0, 1, 2, 3, 4]); // owner drains its shard, then steals
/// ```
#[derive(Debug)]
pub struct WorkShards {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl WorkShards {
    /// Split `0..items` into `workers` contiguous shards (the first
    /// `items % workers` shards get one extra index).
    pub fn new(items: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let base = items / workers;
        let extra = items % workers;
        let mut queues = Vec::with_capacity(workers);
        let mut next = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            queues.push(Mutex::new((next..next + len).collect()));
            next += len;
        }
        debug_assert_eq!(next, items);
        WorkShards { queues }
    }

    /// Number of shards (== workers at construction).
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Take the next index for `worker`: front of its own shard, else the
    /// back of the first non-empty sibling (scanning from `worker + 1`,
    /// wrapping). `None` means all shards are drained and the worker can
    /// exit.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        let w = worker % self.queues.len();
        if let Some(i) = self.queues[w].lock().expect("shard poisoned").pop_front() {
            return Some(i);
        }
        for off in 1..self.queues.len() {
            let victim = (w + off) % self.queues.len();
            if let Some(i) = self.queues[victim].lock().expect("shard poisoned").pop_back() {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_index_exactly_once_single_worker() {
        let shards = WorkShards::new(7, 3);
        let mut seen = Vec::new();
        while let Some(i) = shards.pop(0) {
            seen.push(i);
        }
        let set: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(seen.len(), 7);
        assert_eq!(set.len(), 7);
        assert!(set.contains(&0) && set.contains(&6));
    }

    #[test]
    fn owner_takes_front_thief_takes_back() {
        let shards = WorkShards::new(8, 2); // shards: [0..4), [4..8)
        assert_eq!(shards.pop(0), Some(0)); // owner front
        assert_eq!(shards.pop(1), Some(4)); // owner front
        // Drain worker 0's shard, then it must steal from the BACK of 1's.
        assert_eq!(shards.pop(0), Some(1));
        assert_eq!(shards.pop(0), Some(2));
        assert_eq!(shards.pop(0), Some(3));
        assert_eq!(shards.pop(0), Some(7)); // stolen
        assert_eq!(shards.pop(1), Some(5)); // owner unaffected at the front
    }

    #[test]
    fn more_workers_than_items_and_empty() {
        let shards = WorkShards::new(2, 8);
        let mut seen: Vec<usize> = std::iter::from_fn(|| shards.pop(5)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(shards.pop(0), None);
        let empty = WorkShards::new(0, 4);
        assert_eq!(empty.pop(0), None);
        // workers = 0 clamps to 1.
        let one = WorkShards::new(3, 0);
        assert_eq!(one.workers(), 1);
        assert_eq!(one.pop(0), Some(0));
    }

    #[test]
    fn concurrent_drain_produces_each_index_once() {
        let shards = WorkShards::new(1000, 4);
        let collected: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let shards = &shards;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(i) = shards.pop(w) {
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let all: Vec<usize> = collected.into_iter().flatten().collect();
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), 1000);
        assert_eq!(set.len(), 1000);
    }
}
