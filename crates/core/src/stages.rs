//! Staged execution of the pipeline, for reproducing the paper's running
//! example (Figures 2–10): the IR snapshot after every transformation.

use epre_ir::Function;
use epre_passes::passes::{Clean, Coalesce, ConstProp, Dce, Gvn, Peephole, Pre, Reassociate};
use epre_passes::Pass;
use epre_ssa::{build_ssa, SsaOptions};

use crate::fault::PassFault;

/// A stage of the paper's walkthrough, matching its figure numbers.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Figure 3: the intermediate form as lowered.
    Intermediate,
    /// Figure 4: pruned SSA with copies folded.
    PrunedSsa,
    /// Figures 5–7: after reassociation (copies inserted, forward
    /// propagation, sorting).
    Reassociated,
    /// Figure 8: after global value numbering/renaming.
    ValueNumbered,
    /// Figure 9: after partial redundancy elimination.
    AfterPre,
    /// Figure 10: after the baseline sequence incl. coalescing.
    Final,
}

impl Stage {
    /// All stages in order, with the paper figure each reproduces.
    pub const ALL: [(Stage, &'static str); 6] = [
        (Stage::Intermediate, "Figure 3: intermediate form"),
        (Stage::PrunedSsa, "Figure 4: pruned SSA form"),
        (Stage::Reassociated, "Figures 5-7: after reassociation (copies, forward propagation, sorting)"),
        (Stage::ValueNumbered, "Figure 8: after value numbering"),
        (Stage::AfterPre, "Figure 9: after partial redundancy elimination"),
        (Stage::Final, "Figure 10: after coalescing"),
    ];
}

/// The snapshots produced by [`run_staged`].
#[derive(Debug, Clone)]
pub struct StagedOutput {
    /// `(stage, description, snapshot)` triples in pipeline order.
    pub snapshots: Vec<(Stage, &'static str, Function)>,
}

impl StagedOutput {
    /// The snapshot for a stage.
    pub fn stage(&self, s: Stage) -> &Function {
        &self.snapshots.iter().find(|(st, _, _)| *st == s).expect("all stages recorded").2
    }
}

/// Debug-build verification between stages, naming the stage and the
/// function through the typed [`PassFault`] route so a broken snapshot is
/// attributable at a glance.
fn debug_verify_stage(f: &Function, stage: Stage) -> Result<(), PassFault> {
    if cfg!(debug_assertions) {
        if let Err(e) = f.verify() {
            return Err(PassFault::verify(format!("stage {stage:?}"), &f.name, e.to_string()));
        }
    }
    Ok(())
}

/// Run the `distribution`-level pipeline over `f`, capturing the IR after
/// each of the paper's walkthrough stages and reporting a typed fault
/// instead of panicking.
///
/// # Errors
/// The [`PassFault`] of the first stage whose snapshot fails debug-build
/// verification.
pub fn try_run_staged(f: &Function, distribute: bool) -> Result<StagedOutput, PassFault> {
    let mut snapshots = Vec::new();
    let mut cur = f.clone();
    snapshots.push((Stage::Intermediate, Stage::ALL[0].1, cur.clone()));

    // Figure 4 is a *view*: the pipeline's reassociation pass builds SSA
    // internally, so reproduce the snapshot on a scratch copy.
    let mut ssa_view = cur.clone();
    build_ssa(&mut ssa_view, SsaOptions { fold_copies: true });
    debug_verify_stage(&ssa_view, Stage::PrunedSsa)?;
    snapshots.push((Stage::PrunedSsa, Stage::ALL[1].1, ssa_view));

    Reassociate { distribute }.run(&mut cur);
    debug_verify_stage(&cur, Stage::Reassociated)?;
    snapshots.push((Stage::Reassociated, Stage::ALL[2].1, cur.clone()));

    Gvn.run(&mut cur);
    debug_verify_stage(&cur, Stage::ValueNumbered)?;
    snapshots.push((Stage::ValueNumbered, Stage::ALL[3].1, cur.clone()));

    Pre.run(&mut cur);
    debug_verify_stage(&cur, Stage::AfterPre)?;
    snapshots.push((Stage::AfterPre, Stage::ALL[4].1, cur.clone()));

    ConstProp.run(&mut cur);
    Peephole.run(&mut cur);
    Dce.run(&mut cur);
    Coalesce.run(&mut cur);
    Clean.run(&mut cur);
    debug_verify_stage(&cur, Stage::Final)?;
    snapshots.push((Stage::Final, Stage::ALL[5].1, cur));

    Ok(StagedOutput { snapshots })
}

/// Run the `distribution`-level pipeline over `f`, capturing the IR after
/// each of the paper's walkthrough stages.
///
/// # Panics
/// Panics with the [`PassFault`] rendering when a stage snapshot fails
/// debug-build verification; see [`try_run_staged`] for the non-panicking
/// route.
pub fn run_staged(f: &Function, distribute: bool) -> StagedOutput {
    match try_run_staged(f, distribute) {
        Ok(out) => out,
        Err(fault) => panic!("{fault}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_frontend::{compile, NamingMode};
    use epre_interp::{Interpreter, Value};

    const FOO: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    #[test]
    fn all_stages_recorded_and_verified() {
        let m = compile(FOO, NamingMode::Simple).unwrap();
        let staged = run_staged(m.function("foo").unwrap(), true);
        assert_eq!(staged.snapshots.len(), 6);
        for (stage, _, f) in &staged.snapshots {
            assert!(f.verify().is_ok(), "stage {stage:?} fails verification");
        }
        // SSA stage has φs; final stage has none.
        assert!(staged.stage(Stage::PrunedSsa).blocks.iter().any(|b| b.phi_count() > 0));
        assert!(staged.stage(Stage::Final).blocks.iter().all(|b| b.phi_count() == 0));
    }

    #[test]
    fn final_stage_runs_and_beats_input() {
        let m = compile(FOO, NamingMode::Simple).unwrap();
        let staged = run_staged(m.function("foo").unwrap(), true);
        let mut m0 = epre_ir::Module::new();
        m0.functions.push(staged.stage(Stage::Intermediate).clone());
        let mut m1 = epre_ir::Module::new();
        m1.functions.push(staged.stage(Stage::Final).clone());
        let args = [Value::Float(1.0), Value::Float(2.0)];
        let mut i0 = Interpreter::new(&m0);
        let mut i1 = Interpreter::new(&m1);
        let r0 = i0.run("foo", &args).unwrap();
        let r1 = i1.run("foo", &args).unwrap();
        assert_eq!(r0, r1);
        assert!(
            i1.counts().total < i0.counts().total,
            "final {} vs input {}",
            i1.counts().total,
            i0.counts().total
        );
    }

    #[test]
    fn paper_claim_loop_shorter_without_longer_paths() {
        // "the sequence of transformations reduced the length of the loop
        // by 1 operation without increasing the length of any path".
        // Check the spirit: dynamic counts improve for several trip counts
        // including the zero-trip path.
        let m = compile(FOO, NamingMode::Simple).unwrap();
        let staged = run_staged(m.function("foo").unwrap(), true);
        for (y, z) in [(200.0, 200.0), (1.0, 2.0), (50.0, 0.0)] {
            let mut m0 = epre_ir::Module::new();
            m0.functions.push(staged.stage(Stage::Intermediate).clone());
            let mut m1 = epre_ir::Module::new();
            m1.functions.push(staged.stage(Stage::Final).clone());
            let args = [Value::Float(y), Value::Float(z)];
            let mut i0 = Interpreter::new(&m0);
            let mut i1 = Interpreter::new(&m1);
            let r0 = i0.run("foo", &args).unwrap();
            let r1 = i1.run("foo", &args).unwrap();
            assert_eq!(r0, r1);
            assert!(i1.counts().total <= i0.counts().total, "path lengthened at ({y},{z})");
        }
    }
}
