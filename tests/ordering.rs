//! §5.2 of the paper: pass-ordering interactions. "Many compilers replace
//! an integer multiply with one constant argument by a series of shifts
//! ... Since shifts are not associative, this optimization should not be
//! performed until after global reassociation. For example, if
//! ((x × y) × 2) × z is prematurely converted ... we lose the opportunity
//! to group z with either x or y. This effect is measurable; indeed, we
//! have accidentally measured it more than once."

use epre_frontend::{compile, NamingMode};
use epre_interp::{Interpreter, Value};
use epre_ir::{BinOp, Const, FunctionBuilder, Inst, Module, Ty};
use epre_passes::passes::{Peephole, Reassociate};
use epre_passes::Pass;

/// Build ((x*y)*2)*z where x, y are loop-invariant and z varies: correct
/// ordering lets reassociation group (2*x*y) for hoisting.
fn build() -> epre_ir::Function {
    let mut b = FunctionBuilder::new("f", Some(Ty::Int));
    let x = b.param(Ty::Int);
    let y = b.param(Ty::Int);
    let n = b.param(Ty::Int);
    let acc = b.new_reg(Ty::Int);
    let z = b.new_reg(Ty::Int);
    let body = b.new_block();
    let exit = b.new_block();
    let zero = b.loadi(Const::Int(0));
    b.copy_to(acc, zero);
    b.copy_to(z, zero);
    let g = b.bin(BinOp::CmpGe, Ty::Int, z, n);
    b.branch(g, exit, body);
    b.switch_to(body);
    let xy = b.bin(BinOp::Mul, Ty::Int, x, y);
    let two = b.loadi(Const::Int(2));
    let xy2 = b.bin(BinOp::Mul, Ty::Int, xy, two);
    let xyz2 = b.bin(BinOp::Mul, Ty::Int, xy2, z);
    let acc2 = b.bin(BinOp::Add, Ty::Int, acc, xyz2);
    b.copy_to(acc, acc2);
    let one = b.loadi(Const::Int(1));
    let z2 = b.bin(BinOp::Add, Ty::Int, z, one);
    b.copy_to(z, z2);
    let c = b.bin(BinOp::CmpLt, Ty::Int, z, n);
    b.branch(c, body, exit);
    b.switch_to(exit);
    b.ret(Some(acc));
    b.finish()
}

fn run(f: &epre_ir::Function, n: i64) -> (Option<Value>, u64) {
    let mut m = Module::new();
    m.functions.push(f.clone());
    let mut i = Interpreter::new(&m);
    let r = i.run("f", &[Value::Int(3), Value::Int(5), Value::Int(n)]).unwrap();
    (r, i.counts().total)
}

#[test]
fn premature_strength_reduction_blocks_grouping() {
    use epre_passes::passes::{Clean, Coalesce, Dce, Gvn, Pre};

    let finish = |f: &mut epre_ir::Function| {
        Gvn.run(f);
        Pre.run(f);
        Peephole.run(f);
        Dce.run(f);
        Coalesce.run(f);
        Clean.run(f);
    };

    // Correct order: reassociate, THEN peephole (the pipeline's order).
    // The whole invariant product 2*x*y groups and hoists.
    let mut good = build();
    Reassociate { distribute: false }.run(&mut good);
    finish(&mut good);

    // Wrong order: peephole first turns ×2 into the non-associative
    // x+x shape, hiding the multiply from reassociation — z can no
    // longer be grouped away from the invariants.
    let mut bad = build();
    Peephole.run(&mut bad);
    Reassociate { distribute: false }.run(&mut bad);
    finish(&mut bad);

    let (rg, cg) = run(&good, 10);
    let (rb, cb) = run(&bad, 10);
    assert_eq!(rg, rb, "both orders compute the same value");
    assert!(
        cg <= cb,
        "premature strength reduction must not be cheaper: good {cg} vs bad {cb}\n\
         good:\n{good}\nbad:\n{bad}"
    );
    // The grouped invariant product must be out of the loop in the good
    // order: the loop body contains at most one multiply (invariant ×  z).
    let loop_muls = |f: &epre_ir::Function| {
        // Count multiplies in blocks that are inside a cycle (reached from
        // themselves).
        let cfg = epre_cfg::Cfg::new(f);
        let dom = epre_cfg::Dominators::new(f, &cfg);
        let li = epre_cfg::LoopInfo::new(&cfg, &dom);
        f.iter_blocks()
            .filter(|(bid, _)| li.depth(*bid) > 0)
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
            .count()
    };
    assert!(
        loop_muls(&good) <= 1,
        "good order leaves at most the loop-variant multiply inside:\n{good}"
    );
}

#[test]
fn pipeline_puts_peephole_after_reassociation() {
    // Guard the §5.2 ordering constraint structurally: in every level's
    // pass list, `peephole` comes after any reassociation pass.
    for level in epre::OptLevel::PAPER_LEVELS {
        let names: Vec<&str> =
            epre::Optimizer::new(level).passes().iter().map(|p| p.name()).collect();
        if let Some(ri) = names.iter().position(|n| n.starts_with("reassociate")) {
            let pi = names.iter().position(|n| *n == "peephole").unwrap();
            assert!(pi > ri, "{level:?}: {names:?}");
        }
    }
}

#[test]
fn full_pipeline_handles_the_example() {
    // End-to-end through the real optimizer: values agree at all levels.
    let src = "function f(x, y, n)\n\
               integer f, x, y, n, z, acc\n\
               begin\n\
               acc = 0\n\
               do z = 0, n - 1\n\
                 acc = acc + x * y * 2 * z\n\
               enddo\n\
               return acc\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    let args = [Value::Int(3), Value::Int(5), Value::Int(10)];
    let mut results = Vec::new();
    for level in epre::OptLevel::PAPER_LEVELS {
        let opt = epre::Optimizer::new(level).optimize(&m);
        let mut i = Interpreter::new(&opt);
        results.push(i.run("f", &args).unwrap());
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    assert_eq!(results[0], Some(Value::Int((0..10).map(|z| 30 * z).sum())));
}
