//! Serial/parallel equivalence of the module driver: `optimize_jobs(N)`
//! must be **byte-identical** to the serial pipeline — same IR, same
//! fault handling — at every optimization level, over the whole
//! 50-routine suite and the harness's repro corpus.
//!
//! Determinism is a hard requirement of the parallel pass manager: worker
//! scheduling must never leak into the output (functions are reassembled
//! in module order) or into fault reports (the earliest function in
//! module order wins). These tests pin that contract end-to-end.

use epre::{OptLevel, Optimizer};
use epre_frontend::NamingMode;
use epre_harness::{FaultPolicy, Harness};
use epre_ir::parse_module;

const ALL_LEVELS: [OptLevel; 5] = [
    OptLevel::Baseline,
    OptLevel::Partial,
    OptLevel::Reassociation,
    OptLevel::Distribution,
    OptLevel::DistributionLvn,
];

#[test]
fn suite_parallel_output_is_byte_identical_to_serial() {
    for r in epre_suite::all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        for level in ALL_LEVELS {
            let opt = Optimizer::new(level);
            let serial = format!("{}", opt.optimize(&m));
            for jobs in [2, 4] {
                let parallel = format!("{}", opt.optimize_jobs(&m, jobs));
                assert_eq!(serial, parallel, "{} at {level:?}, jobs={jobs}", r.name);
            }
        }
    }
}

#[test]
fn fortran_repro_parallel_matches_serial() {
    let src = include_str!("../crates/harness/tests/repros/nested_do_shadowed_index.f");
    let m = epre_frontend::compile(src, NamingMode::Disciplined).unwrap();
    for level in ALL_LEVELS {
        let opt = Optimizer::new(level);
        let serial = format!("{}", opt.optimize(&m));
        let parallel = format!("{}", opt.optimize_jobs(&m, 4));
        assert_eq!(serial, parallel, "repro at {level:?}");
    }
}

/// The broken-input repro goes through the sandboxed harness (the plain
/// pipeline would fail its debug-build verification): parallel sandboxing
/// must contain the same faults and emit the same module as serial.
#[test]
fn broken_repro_sandboxed_parallel_matches_serial() {
    let text = include_str!("../crates/harness/tests/repros/use_before_def_min.iloc");
    let m = parse_module(text).unwrap();
    for level in [OptLevel::Baseline, OptLevel::Distribution] {
        let h = Harness::new(level, FaultPolicy::BestEffort);
        let serial = h.optimize(&m).unwrap();
        let parallel = h.optimize_jobs(&m, 4).unwrap();
        assert_eq!(
            format!("{}", serial.module),
            format!("{}", parallel.module),
            "sandboxed output at {level:?}"
        );
        let label = |o: &epre_harness::HardenedOutput| {
            o.faults.iter().map(|f| format!("{f}\n")).collect::<String>()
        };
        assert_eq!(label(&serial), label(&parallel), "fault reports at {level:?}");
    }
}
