//! End-to-end checks of `epre opt --journal/--resume` through the real
//! binary: a journaled run that is killed mid-write (simulated by tearing
//! the journal tail) must resume to *byte-identical* stdout, and config
//! mismatches or misuse of the flags must be refused with exit code 2.

use std::path::PathBuf;
use std::process::{Command, Output};

use epre_frontend::{compile, NamingMode};

/// Two small functions so the journal holds more than one record.
const SRC: &str = "function tri(n)\n\
                   integer n, s, i, tri\n\
                   begin\n\
                   s = 0\n\
                   do i = 1, n\n\
                     s = s + i\n\
                   enddo\n\
                   return s\n\
                   end\n\
                   function mix(a, b)\n\
                   real a, b, x\n\
                   begin\n\
                   x = a * b + a\n\
                   return x + a * b\n\
                   end\n";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("epre-cli-{}-{name}", std::process::id()))
}

/// Compile the fixture and write its ILOC text where the binary can read it.
fn write_fixture(name: &str) -> PathBuf {
    let module = compile(SRC, NamingMode::Disciplined).unwrap();
    let path = tmp(name);
    std::fs::write(&path, format!("{module}")).unwrap();
    path
}

fn epre(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_epre")).args(args).output().expect("spawn epre")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn journal_resume_is_byte_identical_after_a_kill() {
    let input = write_fixture("resume.iloc");
    let journal = tmp("resume.journal");
    let _ = std::fs::remove_file(&journal);
    let input_s = input.to_str().unwrap();
    let journal_s = journal.to_str().unwrap();

    let first = epre(&["opt", input_s, "--best-effort", "--journal", journal_s]);
    assert_eq!(code(&first), 0, "stderr: {}", String::from_utf8_lossy(&first.stderr));
    assert!(!first.stdout.is_empty());
    let stderr1 = String::from_utf8_lossy(&first.stderr);
    assert!(stderr1.contains("2 optimized fresh"), "stderr: {stderr1}");

    // Simulate a kill mid-write: tear bytes off the journal tail. The last
    // record becomes unparseable; earlier records stay intact.
    let bytes = std::fs::read(&journal).unwrap();
    assert!(bytes.len() > 9, "journal suspiciously small");
    std::fs::write(&journal, &bytes[..bytes.len() - 9]).unwrap();

    let second = epre(&["opt", input_s, "--best-effort", "--journal", journal_s, "--resume"]);
    assert_eq!(code(&second), 0, "stderr: {}", String::from_utf8_lossy(&second.stderr));
    assert_eq!(
        first.stdout, second.stdout,
        "resumed output must be byte-identical to the uninterrupted run"
    );
    let stderr2 = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr2.contains("1 function(s) reused") && stderr2.contains("torn tail discarded"),
        "stderr: {stderr2}"
    );

    // A third resume over the now-complete journal replays everything.
    let third = epre(&["opt", input_s, "--best-effort", "--journal", journal_s, "--resume"]);
    assert_eq!(code(&third), 0);
    assert_eq!(first.stdout, third.stdout);
    assert!(
        String::from_utf8_lossy(&third.stderr).contains("2 function(s) reused"),
        "stderr: {}",
        String::from_utf8_lossy(&third.stderr)
    );

    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&journal);
}

/// Regression: a zero-length journal file (a crash after `open(2)` but
/// before the header write reached the disk) must behave like a fresh
/// start — exit 0, byte-identical output, no torn-tail chatter — not
/// like a corrupt or mismatched journal.
#[test]
fn resume_over_an_empty_journal_starts_fresh() {
    let input = write_fixture("empty-journal.iloc");
    let journal = tmp("empty-journal.journal");
    let input_s = input.to_str().unwrap();
    let journal_s = journal.to_str().unwrap();

    let reference = epre(&["opt", input_s, "--best-effort"]);
    assert_eq!(code(&reference), 0);

    std::fs::write(&journal, "").unwrap();
    let resumed = epre(&["opt", input_s, "--best-effort", "--journal", journal_s, "--resume"]);
    assert_eq!(code(&resumed), 0, "stderr: {}", String::from_utf8_lossy(&resumed.stderr));
    assert_eq!(reference.stdout, resumed.stdout, "fresh start must match a plain run");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(!stderr.contains("torn tail"), "an empty file is fresh, not torn: {stderr}");
    assert!(stderr.contains("2 optimized fresh"), "stderr: {stderr}");

    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn resume_under_a_different_config_is_refused() {
    let input = write_fixture("mismatch.iloc");
    let journal = tmp("mismatch.journal");
    let _ = std::fs::remove_file(&journal);
    let input_s = input.to_str().unwrap();
    let journal_s = journal.to_str().unwrap();

    let first = epre(&[
        "opt", input_s, "--best-effort", "--level", "distribution", "--journal", journal_s,
    ]);
    assert_eq!(code(&first), 0, "stderr: {}", String::from_utf8_lossy(&first.stderr));

    // Same journal, different level: replaying those entries would silently
    // emit code optimized under the wrong config.
    let second = epre(&[
        "opt", input_s, "--best-effort", "--level", "baseline", "--journal", journal_s,
        "--resume",
    ]);
    assert_eq!(code(&second), 2, "stderr: {}", String::from_utf8_lossy(&second.stderr));

    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn budget_and_journal_flags_require_best_effort() {
    let input = write_fixture("flags.iloc");
    let input_s = input.to_str().unwrap();
    for args in [
        vec!["opt", input_s, "--deadline-ms", "10"],
        vec!["opt", input_s, "--max-growth", "4.0"],
        vec!["opt", input_s, "--journal", "/tmp/ignored.journal"],
        vec!["opt", input_s, "--best-effort", "--resume"],
    ] {
        let out = epre(&args);
        assert_eq!(code(&out), 2, "{args:?} must be a usage error");
    }
    let _ = std::fs::remove_file(&input);
}

#[test]
fn best_effort_without_journal_matches_plain_opt_on_clean_input() {
    let input = write_fixture("clean.iloc");
    let input_s = input.to_str().unwrap();
    let plain = epre(&["opt", input_s]);
    let hardened = epre(&["opt", input_s, "--best-effort", "--jobs", "2"]);
    assert_eq!(code(&plain), 0);
    assert_eq!(
        code(&hardened),
        0,
        "clean input must not trip exit 3; stderr: {}",
        String::from_utf8_lossy(&hardened.stderr)
    );
    assert_eq!(plain.stdout, hardened.stdout);
    let _ = std::fs::remove_file(&input);
}
