//! The provenance conservation law, checked over the whole suite: for
//! every function at every paper level,
//!
//! ```text
//! baseline static ops − Σ eliminated + Σ inserted == final static ops
//! ```
//!
//! per pass and end to end. The ledgers are reconstructed purely from the
//! exported `provenance` events, so this also pins that the trace carries
//! enough information to account for every static operation the pipeline
//! created or destroyed — the contract `epre explain` renders for users.

use epre::{opcode_histogram, OptLevel, Optimizer};
use epre_frontend::NamingMode;
use epre_telemetry::ledgers_from_trace;

#[test]
fn suite_ledgers_conserve_static_ops_at_every_paper_level() {
    for r in epre_suite::all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        for &level in &OptLevel::PAPER_LEVELS {
            let opt = Optimizer::new(level);
            let (out, trace) =
                opt.try_optimize_traced(&m, 1, false).unwrap_or_else(|f| panic!("{f}"));
            let ledgers = ledgers_from_trace(&trace);
            assert_eq!(
                ledgers.len(),
                m.functions.len(),
                "{} at {level:?}: one ledger per function",
                r.name
            );
            for (ledger, (input, output)) in
                ledgers.iter().zip(m.functions.iter().zip(&out.functions))
            {
                assert_eq!(ledger.function, input.name, "{} at {level:?}", r.name);
                assert_eq!(
                    ledger.ops_before,
                    input.static_op_count() as u64,
                    "{}::{} at {level:?}: ledger must start at the input size",
                    r.name,
                    input.name
                );
                assert_eq!(
                    ledger.ops_after,
                    output.static_op_count() as u64,
                    "{}::{} at {level:?}: ledger must end at the output size",
                    r.name,
                    input.name
                );
                assert!(
                    ledger.conserves(),
                    "{}::{} at {level:?}: conservation violated\n{}",
                    r.name,
                    input.name,
                    ledger.render()
                );
            }
        }
    }
}

/// The ledgers' opcode vocabulary matches the IR: summing a function's
/// histogram always reproduces its static operation count, so eliminated
/// and inserted entries can never hide operations in unnamed opcodes.
#[test]
fn histograms_account_for_every_static_op() {
    for r in epre_suite::all_routines().iter().take(10) {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        for level in [OptLevel::Baseline, OptLevel::Distribution] {
            let out = Optimizer::new(level).optimize(&m);
            for f in &out.functions {
                let total: u64 = opcode_histogram(f).values().sum();
                assert_eq!(total, f.static_op_count() as u64, "{}::{}", r.name, f.name);
            }
        }
    }
}
