//! Differential equivalence campaign for the incremental coalescer.
//!
//! The Chaitin-style coalescing pass was rewritten from
//! one-merge-per-round (full liveness + all-pairs interference rebuild
//! between merges) to a batched formulation over bitset adjacency rows
//! and union-find copy classes. The old implementation is retained as
//! `epre_passes::coalesce::reference`; these tests drive both through the
//! full pipeline over the 50-routine suite at every level and require:
//!
//! * **semantic equivalence** — the differential-execution oracle finds
//!   zero divergences between old-pipeline and new-pipeline outputs;
//! * **fixed-point completeness** — immediately after the new pass runs,
//!   zero coalescable (non-self, type-compatible, non-param-pair,
//!   non-interfering) copies remain in any function;
//! * **scheduling determinism** — the rewritten pass produces
//!   byte-identical modules at `--jobs 1/2/8` over the combined suite.

use std::collections::HashSet;

use epre::{run_pass_cached, OptLevel, Optimizer};
use epre_analysis::{AnalysisCache, PreservedAnalyses};
use epre_frontend::NamingMode;
use epre_harness::{compare_modules_detailed, OracleConfig};
use epre_ir::{Function, Inst, Module};
use epre_passes::{coalesce, Pass};

const ALL_LEVELS: [OptLevel; 5] = [
    OptLevel::Baseline,
    OptLevel::Partial,
    OptLevel::Reassociation,
    OptLevel::Distribution,
    OptLevel::DistributionLvn,
];

/// The pre-incremental coalescer as a drop-in `Pass`, so the reference
/// pipeline differs from the real one in exactly one slot.
struct ReferenceCoalesce;

impl Pass for ReferenceCoalesce {
    fn name(&self) -> &'static str {
        "coalesce"
    }
    fn run(&self, f: &mut Function) -> bool {
        coalesce::reference::run(f)
    }
    fn preserves(&self) -> PreservedAnalyses {
        PreservedAnalyses::none().with_cfg()
    }
    fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
        coalesce::reference::run_with_cache(f, cache)
    }
}

/// Run the level's full pipeline per function through `run_pass_cached`
/// (debug builds verify the IR and validate the analysis cache after
/// every pass). `reference_coalesce` swaps the coalesce slot for the old
/// implementation; `check_fixed_point` asserts the completeness property
/// right after the (new) coalescer runs.
fn optimize_with(
    module: &Module,
    level: OptLevel,
    reference_coalesce: bool,
    check_fixed_point: bool,
) -> Module {
    let opt = Optimizer::new(level);
    let mut out = module.clone();
    for f in &mut out.functions {
        let mut cache = AnalysisCache::new();
        for pass in opt.passes() {
            if pass.name() == "coalesce" && reference_coalesce {
                run_pass_cached(&ReferenceCoalesce, f, &mut cache)
                    .unwrap_or_else(|e| panic!("reference pipeline fault: {e}"));
            } else {
                run_pass_cached(pass.as_ref(), f, &mut cache)
                    .unwrap_or_else(|e| panic!("pipeline fault: {e}"));
            }
            if pass.name() == "coalesce" && check_fixed_point {
                assert_eq!(
                    coalesce::coalescable_copies(f),
                    0,
                    "coalescable copies left in {} at {level:?}",
                    f.name
                );
            }
        }
    }
    out
}

/// Old-vs-new coalescer over the whole suite × every level, through the
/// differential-execution oracle: zero mismatches allowed.
#[test]
fn old_vs_new_coalescer_suite_differential() {
    let config = OracleConfig::default();
    let mut comparisons = 0usize;
    for r in epre_suite::all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap_or_else(|e| panic!("{}: {e}", r.name));
        for level in ALL_LEVELS {
            let new = optimize_with(&m, level, false, false);
            let old = optimize_with(&m, level, true, false);
            let outcome = compare_modules_detailed(&old, &new, &config);
            assert!(
                outcome.divergences.is_empty(),
                "{} at {level:?}: {:?}",
                r.name,
                outcome.divergences
            );
            comparisons += outcome.comparisons;
        }
    }
    assert!(comparisons > 0, "the oracle must actually have compared executions");
}

/// Property: the new coalescer's fixed point leaves **zero** remaining
/// coalescable copies, in every function of every routine at every level.
#[test]
fn coalescer_leaves_zero_coalescable_copies_suite_wide() {
    for r in epre_suite::all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap_or_else(|e| panic!("{}: {e}", r.name));
        for level in ALL_LEVELS {
            let _ = optimize_with(&m, level, false, true);
        }
    }
}

/// All 50 routines fused into one module (same construction as the
/// throughput benchmark) so the work-stealing parallel driver has real
/// work to shard.
fn combined_module() -> Module {
    let mut out = Module::new();
    for r in epre_suite::all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap_or_else(|e| panic!("{}: {e}", r.name));
        let local: HashSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        out.data_words = out.data_words.max(m.data_words);
        for mut f in m.functions {
            f.name = format!("{}__{}", r.name, f.name);
            for block in &mut f.blocks {
                for inst in &mut block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if local.contains(callee.as_str()) {
                            *callee = format!("{}__{}", r.name, callee);
                        }
                    }
                }
            }
            out.functions.push(f);
        }
    }
    out
}

/// Byte-identity of the rewritten pass under the work-stealing driver:
/// jobs 1, 2, and 8 must produce the same module text.
#[test]
fn rewritten_coalescer_jobs_1_2_8_byte_identity() {
    let m = combined_module();
    for level in [OptLevel::Baseline, OptLevel::Distribution] {
        let opt = Optimizer::new(level);
        let serial = format!("{}", opt.optimize_jobs(&m, 1));
        for jobs in [2, 8] {
            let parallel = format!("{}", opt.optimize_jobs(&m, jobs));
            assert_eq!(serial, parallel, "jobs={jobs} diverged at {level:?}");
        }
    }
}
