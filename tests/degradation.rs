//! §4.2 of the paper: the three documented sources of code degradation.
//! "Since we are using heuristic approaches to difficult problems, we
//! should not be surprised by occasional losses." Each case must stay a
//! *performance* loss only — semantics always preserved.

use epre::{Optimizer, OptLevel};
use epre_frontend::{compile, NamingMode};
use epre_interp::{ExecError, Interpreter, Value};
use epre_ir::Module;

fn counts(m: &Module, entry: &str, args: &[Value], level: OptLevel) -> (Option<Value>, u64) {
    let opt = Optimizer::new(level).optimize(m);
    let mut i = Interpreter::new(&opt);
    let r = i.run(entry, args).unwrap();
    (r, i.counts().total)
}

/// Run at `level` under a fuel budget, returning whatever happened.
fn observe(
    m: &Module,
    entry: &str,
    args: &[Value],
    level: OptLevel,
    fuel: u64,
) -> Result<Option<Value>, ExecError> {
    let opt = Optimizer::new(level).optimize(m);
    Interpreter::new(&opt).with_fuel(fuel).run(entry, args)
}

/// Error paths must degrade like value paths: *identically*. For a given
/// failing input, every optimization level must fail with the same
/// [`ExecError`] variant as the unoptimized program.
fn assert_same_failure(m: &Module, entry: &str, args: &[Value], fuel: u64, expect: &str) {
    let reference =
        Interpreter::new(m).with_fuel(fuel).run(entry, args).expect_err("reference must fail");
    assert_eq!(reference.variant_name(), expect, "unexpected reference failure: {reference}");
    for level in [
        OptLevel::Baseline,
        OptLevel::Partial,
        OptLevel::Reassociation,
        OptLevel::Distribution,
        OptLevel::DistributionLvn,
    ] {
        let got = observe(m, entry, args, level, fuel).expect_err("optimized must fail too");
        assert!(
            got.same_variant(&reference),
            "{level:?}: failed with `{got}` but reference failed with `{reference}`"
        );
    }
}

/// §4.2 "Reassociation": sorting by rank can hide that `r0 + r1` was
/// already computed (the paper's own running example exhibits it). The
/// requirement is semantic preservation and bounded loss.
#[test]
fn reassociation_may_hide_cses_but_stays_correct() {
    let src = "function f(a, b, c)\n\
               real a, b, c, u, v\n\
               begin\n\
               u = a + b\n\
               v = a + b + c\n\
               return u * v\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    let args = [Value::Float(1.5), Value::Float(2.5), Value::Float(3.0)];
    let (r_base, c_base) = counts(&m, "f", &args, OptLevel::Baseline);
    let (r_reas, c_reas) = counts(&m, "f", &args, OptLevel::Reassociation);
    assert_eq!(r_base, r_reas);
    // Loss bounded: straight-line code with one shared subexpression can
    // lose the sharing but no more.
    assert!(c_reas <= c_base + 4, "unbounded degradation: {c_reas} vs {c_base}");
    // Error path: under a fuel budget too small for anyone, every level
    // fails with the same `OutOfFuel { budget }` — the error carries the
    // *configured* budget precisely so that optimized and unoptimized
    // runs compare equal.
    assert_same_failure(&m, "f", &args, 2, "out-of-fuel");
}

/// §4.2 "Distribution": the paper's 4×(ri−1) / 8×(ri−1) example. After
/// distribution and folding, `ri − 1` is no longer commonable — slightly
/// worse code, same values.
#[test]
fn distribution_array_stride_example() {
    // Two arrays of different element widths indexed by the same i, as in
    // the paper's single/double-precision pair.
    let src = "function f(n)\n\
               real f, a4(64), a8(64)\n\
               integer n, i\n\
               real s\n\
               begin\n\
               do i = 1, n\n\
                 a4(i) = 1.0 * i\n\
                 a8(i) = 2.0 * i\n\
               enddo\n\
               s = 0\n\
               do i = 1, n\n\
                 s = s + a4(i) * a8(i)\n\
               enddo\n\
               return s\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    let (r_reas, _) = counts(&m, "f", &[Value::Int(32)], OptLevel::Reassociation);
    let (r_dist, c_dist) = counts(&m, "f", &[Value::Int(32)], OptLevel::Distribution);
    assert_eq!(r_reas, r_dist, "distribution must not change values");
    assert!(c_dist > 0);
    // Error path: a trip count past the arrays' bounds must fail as
    // out-of-bounds at every level — distribution may reshape the address
    // arithmetic, but not where it faults.
    assert_same_failure(&m, "f", &[Value::Int(100)], 1_000_000, "out-of-bounds");
}

/// §4.2 "Forward Propagation": `n = j + k` computed before a loop and
/// used only inside it gets pushed into the loop; PRE cannot hoist it
/// back "without lengthening the path around the use of n". Values must
/// still agree for every trip count, including zero.
#[test]
fn forward_propagation_into_loop_stays_correct() {
    let src = "function f(j, k, m)\n\
               integer f, j, k, m, n, i, s\n\
               begin\n\
               n = j + k\n\
               s = 0\n\
               i = 0\n\
               while i < 100 do\n\
                 if i == m then\n\
                   s = s + n\n\
                 endif\n\
                 i = i + 1\n\
               endwhile\n\
               return s\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    for mv in [0i64, 50, 1000] {
        let args = [Value::Int(3), Value::Int(4), Value::Int(mv)];
        let (r_base, _) = counts(&m, "f", &args, OptLevel::Baseline);
        let (r_dist, _) = counts(&m, "f", &args, OptLevel::Distribution);
        assert_eq!(r_base, r_dist, "m = {mv}");
    }
    // Error path: the same forward-propagated expression used as a
    // divisor must trap identically everywhere it lands. `n / m` divides
    // by zero when m = 0, wherever propagation placed the computation.
    let src = "function g(j, k, m)\n\
               integer g, j, k, m, n, i, s\n\
               begin\n\
               n = j + k\n\
               s = 0\n\
               i = 0\n\
               while i < 100 do\n\
                 if i == m then\n\
                   s = s + n / m\n\
                 endif\n\
                 i = i + 1\n\
               endwhile\n\
               return s\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    let args = [Value::Int(3), Value::Int(4), Value::Int(0)];
    assert_same_failure(&m, "g", &args, 1_000_000, "division-by-zero");
}

/// The paper's overall safety claim distilled: whatever the level does to
/// the shape of the code, every suite-style program computes the same
/// thing at every level (checked in bulk over the suite elsewhere; here
/// over the §4.2 shapes at additional inputs).
#[test]
fn degradation_is_never_miscompilation() {
    let src = "function f(a, b)\n\
               real a, b, u, v, w\n\
               begin\n\
               u = a - b + a\n\
               v = (a + b) * (a - b)\n\
               w = u * v - a / (b + 1.0)\n\
               return w + u - v\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    for (a, b) in [(1.0, 2.0), (-3.5, 0.25), (100.0, -100.5)] {
        let args = [Value::Float(a), Value::Float(b)];
        let (r_base, _) = counts(&m, "f", &args, OptLevel::Baseline);
        for level in [OptLevel::Partial, OptLevel::Reassociation, OptLevel::Distribution] {
            let (r, _) = counts(&m, "f", &args, level);
            let (Some(Value::Float(x)), Some(Value::Float(y))) = (r_base, r) else {
                panic!("float results expected");
            };
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() <= 1e-9 * scale,
                "{level:?} at ({a},{b}): {y} vs {x}"
            );
        }
    }
}

/// Degradation is never mis-*failure* either: for every §4.2-style error
/// path — fuel exhaustion, out-of-bounds, division by zero — the exact
/// `OutOfFuel` error (including its budget payload) and the variant of
/// the other errors agree across every optimization level.
#[test]
fn error_paths_fail_identically_across_levels() {
    // Fuel: carries the configured budget, so errors compare *equal*,
    // not merely same-variant.
    let src = "function f(a, b)\n\
               real a, b, u\n\
               begin\n\
               u = a + b\n\
               return u * u\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    let args = [Value::Float(1.0), Value::Float(2.0)];
    let budget = 1u64;
    let reference = Interpreter::new(&m).with_fuel(budget).run("f", &args);
    assert_eq!(reference, Err(ExecError::OutOfFuel { budget }));
    for level in [OptLevel::Baseline, OptLevel::Distribution, OptLevel::DistributionLvn] {
        assert_eq!(
            observe(&m, "f", &args, level, budget),
            Err(ExecError::OutOfFuel { budget }),
            "{level:?}"
        );
    }
    // Out-of-bounds: a direct store past the data segment.
    let src = "function h(i)\n\
               real a(4)\n\
               integer i\n\
               begin\n\
               a(i) = 1.0\n\
               return a(i)\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    assert_same_failure(&m, "h", &[Value::Int(9)], 1_000_000, "out-of-bounds");
    // Division by zero, reached through a value PRE is keen to move.
    let src = "function q(a, b)\n\
               integer q, a, b, t\n\
               begin\n\
               t = a + b\n\
               return t / (a - a)\n\
               end\n";
    let m = compile(src, NamingMode::Disciplined).unwrap();
    assert_same_failure(&m, "q", &[Value::Int(2), Value::Int(5)], 1_000_000, "division-by-zero");
}

/// Like [`observe`], but optimizing with the parallel module driver.
fn observe_jobs(
    m: &Module,
    entry: &str,
    args: &[Value],
    level: OptLevel,
    fuel: u64,
    jobs: usize,
) -> Result<Option<Value>, ExecError> {
    let opt = Optimizer::new(level).optimize_jobs(m, jobs);
    Interpreter::new(&opt).with_fuel(fuel).run(entry, args)
}

/// The worker count is a scheduling knob, not a semantic one: every §4.2
/// error path must fail with the *same variant* whether the module was
/// optimized with 1, 2, or 8 jobs.
#[test]
fn error_paths_are_job_count_invariant() {
    let cases: [(&str, &str, Vec<Value>, u64, &str); 3] = [
        (
            "function f(a, b)\n\
             real a, b, u\n\
             begin\n\
             u = a + b\n\
             return u * u\n\
             end\n",
            "f",
            vec![Value::Float(1.0), Value::Float(2.0)],
            1,
            "out-of-fuel",
        ),
        (
            "function h(i)\n\
             real a(4)\n\
             integer i\n\
             begin\n\
             a(i) = 1.0\n\
             return a(i)\n\
             end\n",
            "h",
            vec![Value::Int(9)],
            1_000_000,
            "out-of-bounds",
        ),
        (
            "function q(a, b)\n\
             integer q, a, b, t\n\
             begin\n\
             t = a + b\n\
             return t / (a - a)\n\
             end\n",
            "q",
            vec![Value::Int(2), Value::Int(5)],
            1_000_000,
            "division-by-zero",
        ),
    ];
    for (src, entry, args, fuel, expect) in cases {
        let m = compile(src, NamingMode::Disciplined).unwrap();
        for level in [OptLevel::Baseline, OptLevel::Distribution, OptLevel::DistributionLvn] {
            let reference =
                observe_jobs(&m, entry, &args, level, fuel, 1).expect_err("must fail");
            assert_eq!(reference.variant_name(), expect, "{level:?}");
            for jobs in [2, 8] {
                let got = observe_jobs(&m, entry, &args, level, fuel, jobs)
                    .expect_err("must fail at every job count");
                assert!(
                    got.same_variant(&reference),
                    "{level:?} jobs={jobs}: `{got}` vs `{reference}`"
                );
            }
        }
    }
}

/// The budget dimension of §4.2-style degradation: a pass stopped by its
/// resource budget degrades the function (rollback to input form), and
/// that degradation — the output text, the fault list, the fault *kind* —
/// is identical at every worker count.
#[test]
fn budget_faults_are_job_count_invariant() {
    use epre::fault::FaultKind;
    use epre::{Budget, BudgetKind};
    use epre_harness::{run_module_governed, FaultPolicy, PassFaultModel};
    use epre_lint::LintOptions;

    let srcs = [
        "function fa(x)\ninteger x, fa\nbegin\nreturn x + x\nend\n",
        "function fb(x)\ninteger x, fb\nbegin\nreturn x * 3\nend\n",
        "function fc(x)\ninteger x, fc\nbegin\nreturn x - 1\nend\n",
        "function fd(x)\ninteger x, fd\nbegin\nreturn x * x + x\nend\n",
    ];
    let mut m = Module::new();
    for s in srcs {
        m.functions.extend(compile(s, NamingMode::Disciplined).unwrap().functions);
    }
    for model in PassFaultModel::ALL {
        let expect = match model {
            PassFaultModel::NonTerminating => BudgetKind::Iterations,
            PassFaultModel::QuadraticGrowth => BudgetKind::Growth,
        };
        let passes_for = move || {
            let mut ps = Optimizer::new(OptLevel::Distribution).passes();
            ps.insert(0, model.build());
            ps
        };
        let budget = Budget::governed();
        let opts = LintOptions::invariants_only();
        let (m1, r1) = run_module_governed(
            &m,
            &passes_for,
            FaultPolicy::BestEffort,
            &opts,
            &budget,
            3,
            1,
        )
        .unwrap();
        assert!(!r1.faults.is_empty(), "{model:?}: the model must fault");
        for ft in &r1.faults {
            assert!(
                matches!(&ft.kind, FaultKind::Budget(b) if b.kind == expect),
                "{model:?}: wrong fault kind: {ft:?}"
            );
        }
        for jobs in [2, 8] {
            let (mj, rj) = run_module_governed(
                &m,
                &passes_for,
                FaultPolicy::BestEffort,
                &opts,
                &budget,
                3,
                jobs,
            )
            .unwrap();
            assert_eq!(format!("{m1}"), format!("{mj}"), "{model:?} output at jobs={jobs}");
            assert_eq!(r1.faults.len(), rj.faults.len(), "{model:?} faults at jobs={jobs}");
            for (a, b) in r1.faults.iter().zip(&rj.faults) {
                assert_eq!(format!("{a}"), format!("{b}"), "{model:?} order at jobs={jobs}");
            }
            assert_eq!(r1.skipped, rj.skipped, "{model:?} skip tally at jobs={jobs}");
            assert_eq!(r1.quarantined, rj.quarantined, "{model:?} at jobs={jobs}");
        }
    }
}

/// The serve path inherits the quarantine's concurrency contract: two
/// requests from the same client faulting on the same (pass, module)
/// pair — racing through the daemon's engine on separate threads —
/// must record exactly *one* piece of evidence. Double-counting a
/// single offense would let one racy client quarantine itself (or,
/// server-side, an innocent tenant) at half the configured threshold.
#[test]
fn concurrent_serve_requests_record_fault_evidence_once() {
    use std::sync::Arc;

    use epre_harness::PassFaultModel;
    use epre_serve::{OptimizeRequest, Request, Response, ResultCache, ServeConfig, ServerCore};

    let src = "function f(a, b)\n\
               integer f, a, b\n\
               begin\n\
               return a * b + a\n\
               end\n";
    let text = format!("{}", compile(src, NamingMode::Disciplined).unwrap());
    let config = ServeConfig {
        chaos: Some(PassFaultModel::QuadraticGrowth),
        client_threshold: 2,
        breaker_threshold: 100, // let every fault through to evidence
        ..Default::default()
    };
    let core = Arc::new(ServerCore::new(config, ResultCache::in_memory()));
    let request = OptimizeRequest {
        client: "racer".into(),
        level: "distribution".into(),
        policy: "best-effort".into(),
        deadline_ms: None,
        idempotency: String::new(),
        request: String::new(),
        module_text: text,
    };

    std::thread::scope(|s| {
        for _ in 0..2 {
            let core = Arc::clone(&core);
            let request = request.clone();
            s.spawn(move || {
                let mut terminal = None;
                core.handle(&Request::Optimize(request), &mut |resp| {
                    terminal = Some(resp);
                    Ok(())
                })
                .unwrap();
                match terminal {
                    Some(Response::Done(d)) => {
                        assert_eq!(d.status, "degraded", "the chaos pass must fault");
                        assert!(!d.client_quarantined, "one offense is below threshold 2");
                    }
                    other => panic!("expected a done frame, got {other:?}"),
                }
            });
        }
    });

    // Both racers faulted on the identical (pass, module) pair: one
    // evidence entry, client still serving.
    let stats = core.stats_snapshot();
    let open = stats.iter().find(|(k, _)| k == "quarantined_clients").unwrap().1;
    assert_eq!(open, 0, "a single racy offense must not trip the quarantine");
}

/// A *non-cooperative* hang — a pass that simply never returns for one
/// function — must not block the rest of the module: the watchdog rolls
/// the hung function back to its input form and the siblings come out
/// fully optimized.
#[test]
fn watchdog_rolls_back_a_hung_function_without_blocking_the_module() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use epre::Budget;
    use epre_harness::{optimize_module_watchdog, FaultPolicy, WatchdogConfig, WATCHDOG_PASS};
    use epre_lint::LintOptions;
    use epre_passes::Pass;

    static RELEASE: AtomicBool = AtomicBool::new(false);

    /// Hangs (until released) on the function named `stuck`, is a no-op
    /// everywhere else. Deliberately ignores the budget: this models
    /// non-cooperative code the meter cannot stop.
    struct StuckOnName;
    impl Pass for StuckOnName {
        fn name(&self) -> &'static str {
            "stuck-on-name"
        }
        fn run(&self, f: &mut epre_ir::Function) -> bool {
            if f.name == "stuck" {
                while !RELEASE.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            false
        }
    }

    let srcs = [
        "function alpha(x)\ninteger x, alpha\nbegin\nreturn x + x + x\nend\n",
        "function stuck(x)\ninteger x, stuck\nbegin\nreturn x * 2\nend\n",
        "function omega(x)\ninteger x, omega\nbegin\nreturn x * x\nend\n",
    ];
    let mut m = Module::new();
    for s in srcs {
        m.functions.extend(compile(s, NamingMode::Disciplined).unwrap().functions);
    }
    let level = OptLevel::Distribution;
    let (out, rep) = optimize_module_watchdog(
        &m,
        Arc::new(move || {
            let mut ps = Optimizer::new(level).passes();
            ps.insert(0, Box::new(StuckOnName) as Box<dyn Pass>);
            ps
        }),
        FaultPolicy::BestEffort,
        LintOptions::invariants_only(),
        Budget::governed(),
        &WatchdogConfig::new(Duration::from_millis(100), 2),
    )
    .unwrap();
    RELEASE.store(true, Ordering::Relaxed);
    // The hung function was rolled back to its input form and blamed on
    // the watchdog's wall-clock evidence.
    assert_eq!(
        format!("{}", out.function("stuck").unwrap()),
        format!("{}", m.function("stuck").unwrap()),
        "hung function must come out as it went in"
    );
    assert!(
        rep.faults.iter().any(|f| f.pass == WATCHDOG_PASS && f.function == "stuck"),
        "missing watchdog fault: {:?}",
        rep.faults
    );
    // The siblings were not held hostage: they come out exactly as the
    // plain optimizer would emit them.
    let plain = Optimizer::new(level).optimize(&m);
    for name in ["alpha", "omega"] {
        assert_eq!(
            format!("{}", out.function(name).unwrap()),
            format!("{}", plain.function(name).unwrap()),
            "`{name}` must be fully optimized despite the hang"
        );
    }
}
