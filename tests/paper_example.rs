//! Integration test for the paper's running example (Figures 2–10).

use epre::stages::{run_staged, Stage};
use epre_frontend::{compile, NamingMode};
use epre_interp::{Interpreter, Value};
use epre_ir::{Inst, Module};

const FOO: &str = "function foo(y, z)\n\
                   real y, z, s, x\n\
                   integer i\n\
                   begin\n\
                   s = 0\n\
                   x = y + z\n\
                   do i = x, 100\n\
                     s = i + s + x\n\
                   enddo\n\
                   return s\n\
                   end\n";

fn run_foo(f: &epre_ir::Function, y: f64, z: f64) -> (Option<Value>, u64) {
    let mut m = Module::new();
    m.functions.push(f.clone());
    let mut i = Interpreter::new(&m);
    let r = i.run("foo", &[Value::Float(y), Value::Float(z)]).unwrap();
    (r, i.counts().total)
}

#[test]
fn figure_2_to_10_walkthrough() {
    let module = compile(FOO, NamingMode::Simple).unwrap();
    let staged = run_staged(module.function("foo").unwrap(), true);

    // Every stage is printable, verifiable IR.
    for (stage, _, f) in &staged.snapshots {
        f.verify().unwrap_or_else(|e| panic!("{stage:?}: {e}"));
        assert!(!format!("{f}").is_empty());
    }

    // Figure 4: pruned SSA has φs for s and i at the loop header (and the
    // return value), with copies folded.
    let ssa = staged.stage(Stage::PrunedSsa);
    let phis: usize = ssa.blocks.iter().map(|b| b.phi_count()).sum();
    assert!(phis >= 2, "loop variables s and i need φs, got {phis}");
    let copies = ssa
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Copy { .. }))
        .count();
    assert_eq!(copies, 0, "copies folded into φs (§3.1)");

    // Figure 8: after value numbering, `y + z` has a single name even
    // though forward propagation duplicated it.
    let vn = staged.stage(Stage::ValueNumbered);
    let yz_names: std::collections::HashSet<_> = vn
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| {
            matches!(i, Inst::Bin { op: epre_ir::BinOp::Add, lhs, rhs, .. }
                     if (*lhs == vn.params[0] && *rhs == vn.params[1])
                     || (*lhs == vn.params[1] && *rhs == vn.params[0]))
        })
        .map(|i| i.dst())
        .collect();
    assert!(yz_names.len() <= 1, "GVN gives y+z one name, got {yz_names:?}");

    // Figure 9: after PRE, y + z is computed at most once.
    let pre = staged.stage(Stage::AfterPre);
    let yz_count = pre
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| {
            matches!(i, Inst::Bin { op: epre_ir::BinOp::Add, lhs, rhs, .. }
                     if (*lhs == pre.params[0] && *rhs == pre.params[1])
                     || (*lhs == pre.params[1] && *rhs == pre.params[0]))
        })
        .count();
    assert_eq!(yz_count, 1, "the invariant y+z hoisted to a single site");

    // End-to-end: semantics preserved, and no path lengthened — including
    // the zero-trip path (y + z > 100).
    let before = staged.stage(Stage::Intermediate);
    let after = staged.stage(Stage::Final);
    for (y, z) in [(1.0, 2.0), (60.0, 60.0), (99.0, 1.0), (0.0, 0.0)] {
        let (r0, c0) = run_foo(before, y, z);
        let (r1, c1) = run_foo(after, y, z);
        assert_eq!(r0, r1, "result differs at ({y},{z})");
        assert!(c1 <= c0, "path lengthened at ({y},{z}): {c1} > {c0}");
    }
    // And a strict improvement on the loopy input.
    let (_, c0) = run_foo(before, 1.0, 2.0);
    let (_, c1) = run_foo(after, 1.0, 2.0);
    assert!(c1 < c0, "the transformations must shorten the loop: {c1} vs {c0}");
}

#[test]
fn disciplined_and_simple_naming_converge_after_gvn() {
    // §3.2: GVN "constructs the name space required by PRE", so the final
    // optimized code quality must not depend on the front end's naming.
    let m_simple = compile(FOO, NamingMode::Simple).unwrap();
    let m_disc = compile(FOO, NamingMode::Disciplined).unwrap();
    let opt = epre::Optimizer::new(epre::OptLevel::Distribution);
    let o_simple = opt.optimize(&m_simple);
    let o_disc = opt.optimize(&m_disc);
    let args = [Value::Float(1.0), Value::Float(2.0)];
    let mut i1 = Interpreter::new(&o_simple);
    let mut i2 = Interpreter::new(&o_disc);
    let r1 = i1.run("foo", &args).unwrap();
    let r2 = i2.run("foo", &args).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(
        i1.counts().total,
        i2.counts().total,
        "the optimizer isolates PRE from the front end's naming (§1)"
    );
}
