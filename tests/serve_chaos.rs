//! Chaos campaign against the real `epre serve` daemon: kill it with
//! SIGKILL, tear its cache file, inject adversarial passes, and feed it
//! garbage frames. The invariants under every abuse are the ISSUE's
//! acceptance bar: **zero wrong answers** (every served module is
//! byte-identical to the in-process hardened optimizer, or provably
//! equivalent under the differential oracle), **zero hangs** (every
//! failure is a typed refusal or a bounded retry exhaustion), and
//! **bounded recovery** (a restart over crash wreckage serves correct
//! answers immediately).

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use epre_frontend::{compile, NamingMode};
use epre_harness::{compare_modules, FaultPolicy, Harness, OracleConfig};
use epre_ir::parse_module;
use epre_serve::{
    run_loadgen, submit, ClientConfig, ClientError, LoadgenConfig, OptimizeRequest, Response,
    Session,
};
use epre::OptLevel;

/// Two functions so the cache holds more than one entry.
const SRC: &str = "function tri(n)\n\
                   integer n, s, i, tri\n\
                   begin\n\
                   s = 0\n\
                   do i = 1, n\n\
                     s = s + i\n\
                   enddo\n\
                   return s\n\
                   end\n\
                   function mix(a, b)\n\
                   real a, b, x\n\
                   begin\n\
                   x = a * b + a\n\
                   return x + a * b\n\
                   end\n";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("epre-chaos-{}-{name}", std::process::id()))
}

fn module_text() -> String {
    format!("{}", compile(SRC, NamingMode::Disciplined).unwrap())
}

/// A daemon child whose port was scraped from its stdout. Killed on drop
/// so a failing assertion cannot leak a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawn `epre serve --port 0 [extra...]` and wait for its
    /// `listening on <addr>` line (bounded, not forever).
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_epre"))
            .args(["serve", "--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn epre serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon stdout");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self) -> ClientConfig {
        ClientConfig {
            addr: self.addr.clone(),
            attempts: 3,
            base_backoff: Duration::from_millis(10),
            read_timeout: Duration::from_secs(30),
            ..Default::default()
        }
    }

    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL the daemon");
        self.child.wait().expect("reap the daemon");
    }

    fn shutdown(mut self) {
        epre_serve::shutdown(&self.client()).expect("shutdown ack");
        let status = self.child.wait().expect("reap the daemon");
        assert!(status.success(), "daemon must exit cleanly on shutdown");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn request(text: &str) -> OptimizeRequest {
    OptimizeRequest {
        client: "chaos".into(),
        level: "distribution".into(),
        policy: "best-effort".into(),
        deadline_ms: Some(60_000),
        idempotency: String::new(),
        request: String::new(),
        module_text: text.to_string(),
    }
}

/// The campaign's spine: correct when healthy, correct from cache,
/// typed (not hung) while dead, correct again after restarting over a
/// SIGKILLed, hand-torn cache file.
#[test]
fn kill9_and_torn_cache_never_change_an_answer() {
    let cache = tmp("kill9.cache");
    let _ = std::fs::remove_file(&cache);
    let text = module_text();

    // Ground truth from the in-process hardened optimizer.
    let module = parse_module(&text).unwrap();
    let expected = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort)
        .optimize(&module)
        .unwrap();
    let expected_text = format!("{}", expected.module);

    let mut daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let cfg = daemon.client();

    let cold = submit(&cfg, &request(&text)).expect("cold submit");
    assert_eq!(cold.done.status, "clean");
    assert_eq!((cold.done.reused, cold.done.fresh), (0, 2));
    assert_eq!(cold.done.module_text, expected_text, "daemon answer == harness answer");

    let warm = submit(&cfg, &request(&text)).expect("warm submit");
    assert_eq!((warm.done.reused, warm.done.fresh), (2, 0));
    assert_eq!(warm.done.module_text, expected_text, "cache replay is byte-identical");
    assert_eq!(warm.done.idempotency, cold.done.idempotency);

    // Crash. A client against the corpse gets a typed error after a
    // bounded number of retries — never a hang.
    daemon.kill9();
    match submit(&cfg, &request(&text)) {
        Err(ClientError::Exhausted { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("expected bounded retry exhaustion, got {other:?}"),
    }

    // Tear the cache mid-record, as the kill could have. The recovered
    // entries must still be served byte-identically; the torn one is
    // recomputed, not trusted.
    let bytes = std::fs::read(&cache).unwrap();
    assert!(bytes.len() > 9, "cache file suspiciously small");
    std::fs::write(&cache, &bytes[..bytes.len() - 9]).unwrap();

    let daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let cfg = daemon.client();
    let recovered = submit(&cfg, &request(&text)).expect("post-crash submit");
    assert_eq!(recovered.done.status, "clean");
    assert_eq!(recovered.done.module_text, expected_text, "recovery never changes an answer");
    assert_eq!(
        (recovered.done.reused, recovered.done.fresh),
        (1, 1),
        "one entry survived the tear, one was recomputed"
    );
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);
}

/// Injected adversarial passes (the harness's fault models) degrade the
/// daemon's answers, never corrupt them: faults are reported, and the
/// served module stays observationally equivalent to the input.
#[test]
fn chaos_injection_degrades_but_never_lies() {
    let text = module_text();
    let module = parse_module(&text).unwrap();
    for model in ["nonterminating", "quadratic-growth"] {
        let daemon = Daemon::spawn(&["--chaos-inject", model]);
        let out = submit(&daemon.client(), &request(&text))
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert_eq!(out.done.status, "degraded", "{model}");
        assert!(out.done.faults >= 1, "{model}: the injected pass must fault");
        let served = parse_module(&out.done.module_text).unwrap();
        let divergences = compare_modules(&module, &served, &OracleConfig::default());
        assert!(divergences.is_empty(), "{model}: wrong answer under chaos: {divergences:?}");
        daemon.shutdown();
    }
}

/// The campaign at suite scale: the whole 50-routine module through the
/// real daemon — cold, warm, SIGKILLed and recovered, then under an
/// injected quadratic-growth pass — with byte-identity between every
/// clean answer and oracle equivalence for the degraded one.
#[test]
fn full_suite_campaign_survives_kill_and_injection() {
    use std::collections::HashSet;

    use epre_ir::{Inst, Module};

    // Fuse the suite as the throughput bench does: prefixed names keep
    // functions unique, local call targets follow.
    let mut fused = Module::new();
    for r in epre_suite::all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        let local: HashSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        fused.data_words = fused.data_words.max(m.data_words);
        for mut f in m.functions {
            f.name = format!("{}__{}", r.name, f.name);
            for block in &mut f.blocks {
                for inst in &mut block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if local.contains(callee.as_str()) {
                            *callee = format!("{}__{}", r.name, callee);
                        }
                    }
                }
            }
            fused.functions.push(f);
        }
    }
    let text = format!("{fused}");
    let n = fused.functions.len() as u64;

    let cache = tmp("suite.cache");
    let _ = std::fs::remove_file(&cache);
    let mut daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let cold = submit(&daemon.client(), &request(&text)).expect("cold suite submit");
    assert_eq!(cold.done.status, "clean");
    assert_eq!((cold.done.reused, cold.done.fresh), (0, n));

    // Crash and recover: every function must replay from the journaled
    // cache, byte-identically.
    daemon.kill9();
    let daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let warm = submit(&daemon.client(), &request(&text)).expect("post-kill suite submit");
    assert_eq!(warm.done.status, "clean");
    assert_eq!((warm.done.reused, warm.done.fresh), (n, 0), "full recovery");
    assert_eq!(warm.done.module_text, cold.done.module_text, "recovery is byte-identical");
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);

    // Injection at suite scale: degraded accounting, equivalent module.
    let daemon = Daemon::spawn(&["--chaos-inject", "quadratic-growth"]);
    let out = submit(&daemon.client(), &request(&text)).expect("chaos suite submit");
    assert_eq!(out.done.status, "degraded");
    assert!(out.done.faults >= 1);
    let served = parse_module(&out.done.module_text).unwrap();
    let divergences = compare_modules(&fused, &served, &OracleConfig::default());
    assert!(divergences.is_empty(), "wrong answer at suite scale: {divergences:?}");
    daemon.shutdown();
}

/// A unique straight-line module with a lexical redundancy; id varies
/// both the function name and a constant, so every id is a distinct
/// cache entry. Mirrors the loadgen generator without depending on it.
fn gen_text(id: u64) -> String {
    format!(
        "module data 0\n\
         function chaos{id}(r0:i) -> i\n\
         block b0:\n\
         \x20 r1 <- loadi {}:i\n\
         \x20 r2 <- add.i r0, r1\n\
         \x20 r3 <- add.i r0, r1\n\
         \x20 r4 <- mul.i r2, r3\n\
         \x20 ret r4\n\
         end\n",
        id % 9973 + 1
    )
}

/// Keep-alive poison isolation against the real binary: a session that
/// turns to garbage after a good frame is refused typed and closed,
/// while a concurrent well-behaved session keeps its connection and
/// keeps getting answers.
#[test]
fn garbage_mid_keepalive_session_poisons_only_that_connection() {
    use std::io::Write;

    use epre_serve::{write_frame, Request};

    let daemon = Daemon::spawn(&["--workers", "4"]);
    let text = module_text();

    // A long-lived well-behaved session, opened first so it is pinned
    // to a worker for the whole test.
    let mut good = Session::new(daemon.client());
    let first = good.submit(&request(&text)).expect("good session submit");
    assert_eq!(first.done.status, "clean");

    // A second keep-alive connection: one good frame, then garbage.
    let stream = std::net::TcpStream::connect(&daemon.addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = std::io::BufWriter::new(stream.try_clone().unwrap());
    let mut reader = std::io::BufReader::new(stream);
    write_frame(&mut writer, &Request::Ping.encode()).expect("write ping");
    let frame = epre_serve::read_frame(&mut reader).unwrap().expect("pong frame");
    assert!(matches!(Response::decode(&frame), Ok(Response::Ack { ref what }) if what == "pong"));
    writer.write_all(b"%%%% definitely not a frame\n").unwrap();
    writer.flush().unwrap();
    let frame = epre_serve::read_frame(&mut reader)
        .expect("typed refusal, not a dropped connection")
        .expect("a frame, not silence");
    match Response::decode(&frame) {
        Ok(Response::Error { code, .. }) => assert_eq!(code.label(), "protocol"),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    // Framing on this connection is unrecoverable, so the daemon must
    // close it rather than guess at a resync point.
    assert!(
        epre_serve::read_frame(&mut reader).unwrap().is_none(),
        "poisoned session must be closed"
    );

    // The well-behaved session is untouched: same connection, warm
    // answer.
    let again = good.submit(&request(&text)).expect("good session survives the poison");
    assert_eq!(again.done.status, "clean");
    assert_eq!((again.done.reused, again.done.fresh), (2, 0));
    assert_eq!(good.reconnects(), 0, "the good session never lost its connection");

    drop(good); // free the pinned worker so drain is immediate
    daemon.shutdown();
}

/// The idle reaper against the real binary: a session left idle past
/// `--idle-timeout-ms` is told `goaway idle-timeout`, and the next
/// submit on that session transparently re-dials — no surfaced error,
/// and the answer still comes from the cache.
#[test]
fn idle_timeout_goaway_reconnects_transparently() {
    let cache = tmp("idle.cache");
    let _ = std::fs::remove_file(&cache);
    let daemon = Daemon::spawn(&[
        "--cache",
        cache.to_str().unwrap(),
        "--idle-timeout-ms",
        "150",
        "--workers",
        "4",
    ]);
    let text = module_text();

    let mut session = Session::new(daemon.client());
    let cold = session.submit(&request(&text)).expect("cold submit");
    assert_eq!(cold.done.status, "clean");
    assert_eq!(session.reconnects(), 0);

    // Outlive the idle timeout; the daemon hangs up with a goaway.
    std::thread::sleep(Duration::from_millis(600));

    let warm = session.submit(&request(&text)).expect("submit after idle goaway");
    assert_eq!(warm.done.status, "clean");
    assert_eq!((warm.done.reused, warm.done.fresh), (2, 0), "answer replays from cache");
    assert_eq!(warm.done.module_text, cold.done.module_text);
    assert!(session.reconnects() >= 1, "the idle goaway must have forced a re-dial");

    drop(session);
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);
}

/// The compaction crash window, staged deterministically: a half-written
/// staging sibling next to an intact journal (exactly what SIGKILL
/// between the staging write and the rename leaves behind) must be
/// ignored and removed on restart, with every old entry recovered.
#[test]
fn stale_compaction_staging_is_ignored_and_removed_on_restart() {
    let cache = tmp("staging.cache");
    let staging = epre_harness::rewrite_staging_path(&cache);
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&staging);
    let text = module_text();

    let daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let cold = submit(&daemon.client(), &request(&text)).expect("cold submit");
    daemon.shutdown();

    std::fs::write(&staging, b"EPRE-SERVE-CACHE v1\nhalf a reco").unwrap();

    let daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    assert!(!staging.exists(), "restart must clear the stale staging sibling");
    let warm = submit(&daemon.client(), &request(&text)).expect("submit over crash wreckage");
    assert_eq!((warm.done.reused, warm.done.fresh), (2, 0), "old journal fully recovered");
    assert_eq!(warm.done.module_text, cold.done.module_text);
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);
}

/// SIGKILL while a tiny `--cache-max-bytes` cap is forcing frequent
/// online compactions: whatever instant the kill lands at — mid-append,
/// mid-staging-write, mid-rename — the journal on disk must load on
/// restart and every answer served afterwards must be byte-identical to
/// the in-process optimizer.
#[test]
fn sigkill_under_constant_compaction_always_leaves_a_loadable_journal() {
    let cache = tmp("killcompact.cache");
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(epre_harness::rewrite_staging_path(&cache));

    // Ground truth for one probe module, computed once.
    let probe = gen_text(7);
    let probe_module = parse_module(&probe).unwrap();
    let expected = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort)
        .optimize(&probe_module)
        .unwrap();
    let probe_expected = format!("{}", expected.module);

    for round in 0u64..5 {
        let mut daemon = Daemon::spawn(&[
            "--cache",
            cache.to_str().unwrap(),
            "--cache-max-bytes",
            "4096",
            "--workers",
            "4",
        ]);
        let addr = daemon.addr.clone();

        // Hammer unique modules through one keep-alive session so the
        // cap forces eviction + compaction continuously; stop on the
        // first error (the kill below severs the connection).
        let hammer = std::thread::spawn(move || {
            let mut session = Session::new(ClientConfig {
                addr,
                attempts: 2,
                base_backoff: Duration::from_millis(5),
                read_timeout: Duration::from_secs(5),
                ..Default::default()
            });
            let mut served = 0u64;
            for i in 0..10_000u64 {
                match session.submit(&request(&gen_text(round * 10_000 + i))) {
                    Ok(out) => {
                        assert_eq!(out.done.status, "clean", "round {round} op {i}");
                        served += 1;
                    }
                    Err(_) => break,
                }
            }
            served
        });

        // Let compactions get going, then kill at a different phase
        // offset each round.
        std::thread::sleep(Duration::from_millis(60 + 37 * round));
        daemon.kill9();
        let served = hammer.join().expect("hammer thread");
        assert!(served > 0, "round {round}: the daemon served nothing before the kill");
    }

    // Final restart over five generations of kill wreckage: the journal
    // must load and answers must still be exactly right.
    let daemon = Daemon::spawn(&[
        "--cache",
        cache.to_str().unwrap(),
        "--cache-max-bytes",
        "4096",
    ]);
    let out = submit(&daemon.client(), &request(&probe)).expect("post-campaign submit");
    assert_eq!(out.done.status, "clean");
    assert_eq!(out.done.module_text, probe_expected, "wrong answer after kill campaign");
    let stats = epre_serve::stats(&daemon.client()).expect("stats");
    let file_bytes =
        stats.iter().find(|(k, _)| k == "cache_file_bytes").map(|(_, v)| *v).unwrap();
    assert!(file_bytes <= 4096, "cache file {file_bytes} exceeds the 4096-byte cap");
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(epre_harness::rewrite_staging_path(&cache));
}

/// SIGTERM is a graceful drain, not a crash: the daemon stops
/// accepting, flushes its cache, and exits 0 — and a restart replays
/// every entry that was admitted before the signal.
#[cfg(unix)]
#[test]
fn sigterm_drains_flushes_the_cache_and_exits_zero() {
    let cache = tmp("sigterm.cache");
    let _ = std::fs::remove_file(&cache);
    let text = module_text();

    let mut daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let out = submit(&daemon.client(), &request(&text)).expect("submit before SIGTERM");
    assert_eq!(out.done.status, "clean");

    let delivered = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(delivered.success(), "kill -TERM must be deliverable");

    // Bounded wait for the drain; a hang here is itself a failure.
    let mut waited = Duration::ZERO;
    let status = loop {
        if let Some(st) = daemon.child.try_wait().expect("try_wait") {
            break st;
        }
        assert!(waited < Duration::from_secs(10), "daemon did not drain within 10s of SIGTERM");
        std::thread::sleep(Duration::from_millis(50));
        waited += Duration::from_millis(50);
    };
    assert!(status.success(), "SIGTERM must drain to exit 0, got {status:?}");

    // The drain flushed the journal: a restart replays both entries.
    let daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let warm = submit(&daemon.client(), &request(&text)).expect("post-drain submit");
    assert_eq!((warm.done.reused, warm.done.fresh), (2, 0), "drain must have flushed the cache");
    assert_eq!(warm.done.module_text, out.done.module_text);
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);
}

/// The loadgen's hostile mix (poison + oversized heavy) against the
/// real binary with a tight cache cap: zero wrong answers, zero hangs,
/// the daemon still serving afterwards, and the cache file still under
/// its cap.
#[test]
fn hostile_load_mix_leaves_the_daemon_serving_and_the_cache_capped() {
    let cache = tmp("loadmix.cache");
    let _ = std::fs::remove_file(&cache);
    let cap: u64 = 16 * 1024;
    let daemon = Daemon::spawn(&[
        "--cache",
        cache.to_str().unwrap(),
        "--cache-max-bytes",
        "16384",
        "--workers",
        "8",
        "--max-session-requests",
        "32",
    ]);

    let report = run_loadgen(&LoadgenConfig {
        addr: daemon.addr.clone(),
        clients: 3,
        duration: Duration::from_millis(1500),
        mix_poison: 2,
        mix_oversized: 2,
        ..Default::default()
    })
    .expect("loadgen run");
    assert!(report.total_ops() > 0, "the mix must actually generate load");
    assert_eq!(report.wrongs(), 0, "zero wrong answers under the hostile mix");
    assert_eq!(report.hangs(), 0, "zero hangs under the hostile mix");

    let stats = epre_serve::stats(&daemon.client()).expect("stats after load");
    let file_bytes =
        stats.iter().find(|(k, _)| k == "cache_file_bytes").map(|(_, v)| *v).unwrap();
    assert!(file_bytes <= cap, "cache file {file_bytes} exceeded cap {cap}");
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(epre_harness::rewrite_staging_path(&cache));
}

/// Garbage on the wire gets a typed protocol refusal, and the daemon
/// keeps serving well-formed clients afterwards.
#[test]
fn garbage_frames_are_refused_typed_and_do_not_poison_the_daemon() {
    use std::io::Write;

    let daemon = Daemon::spawn(&[]);
    let mut stream = std::net::TcpStream::connect(&daemon.addr).expect("connect");
    stream.write_all(b"not a frame at all\n").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let frame = epre_serve::read_frame(&mut reader)
        .expect("typed response, not a dropped connection")
        .expect("a frame, not silence");
    match Response::decode(&frame) {
        Ok(Response::Error { code, .. }) => {
            assert_eq!(code.label(), "protocol");
        }
        other => panic!("expected a typed protocol error, got {other:?}"),
    }

    // The daemon is unharmed: a well-formed request still succeeds.
    let text = module_text();
    let out = submit(&daemon.client(), &request(&text)).expect("submit after garbage");
    assert_eq!(out.done.status, "clean");
    daemon.shutdown();
}

/// The flight recorder under fire: a SIGQUIT checkpoint accounts for
/// every request the daemon has answered, the dump is valid JSONL, and
/// after a SIGKILL mid-hammer the slow-request log (written *before*
/// each answer frame) still accounts for every request id a client
/// holds an answer for. Together the two artifacts explain what the
/// daemon was doing when it died — the observability bar for crashes.
#[test]
fn flight_recorder_and_slow_log_account_for_every_answered_request() {
    let dump_path = tmp("flight.jsonl");
    let slow_path = PathBuf::from(format!("{}.slow", dump_path.display()));
    let _ = std::fs::remove_file(&dump_path);
    let _ = std::fs::remove_file(&slow_path);
    let dump_arg = dump_path.display().to_string();
    let mut daemon = Daemon::spawn(&["--flight-recorder", &dump_arg, "--slow-ms", "0"]);
    let cfg = daemon.client();

    // Phase 1: K sequential submits, then a SIGQUIT checkpoint.
    let mut answered: Vec<String> = Vec::new();
    for id in 0..6u64 {
        let out = submit(&cfg, &request(&gen_text(id))).expect("healthy submit");
        assert_eq!(out.done.status, "clean");
        assert!(!out.done.request.is_empty(), "every answer echoes its request id");
        answered.push(out.done.request);
    }
    let pid = daemon.child.id().to_string();
    let quit = Command::new("kill").args(["-QUIT", &pid]).status().expect("send SIGQUIT");
    assert!(quit.success(), "kill -QUIT must reach the daemon");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let dump = loop {
        if let Ok(s) = std::fs::read_to_string(&dump_path) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(std::time::Instant::now() < deadline, "SIGQUIT dump never appeared");
        std::thread::sleep(Duration::from_millis(50));
    };

    // The checkpoint is valid JSONL in the protocol's integer-only
    // subset, opens with the header line, and accounts for every
    // answered request id with nothing left in flight.
    let mut lines = dump.lines();
    let header = epre_serve::json::parse(lines.next().expect("non-empty dump"))
        .expect("header line parses");
    assert_eq!(header.get("flight_recorder").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(header.get("in_flight").and_then(|v| v.as_u64()), Some(0));
    for line in dump.lines().skip(1) {
        epre_serve::json::parse(line)
            .unwrap_or_else(|e| panic!("dump line is not valid JSON ({e}): {line}"));
    }
    for id in &answered {
        assert!(
            dump.contains(&format!("\"request\":\"{id}\"")),
            "checkpoint must account for answered request {id}:\n{dump}"
        );
    }

    // The daemon kept serving through the checkpoint — SIGQUIT is an
    // observation, not a drain.
    let out = submit(&cfg, &request(&gen_text(100))).expect("submit after SIGQUIT");
    assert_eq!(out.done.status, "clean");

    // Phase 2: hammer from a background thread, SIGKILL mid-flight.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer = {
        let cfg = ClientConfig { attempts: 1, ..cfg.clone() };
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut answered = Vec::new();
            let mut id = 1_000u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                match submit(&cfg, &request(&gen_text(id))) {
                    Ok(out) => answered.push(out.done.request),
                    Err(_) => break, // the kill landed
                }
                id += 1;
            }
            answered
        })
    };
    std::thread::sleep(Duration::from_millis(400));
    daemon.kill9();
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let hammered = hammer.join().expect("hammer thread");

    // Every answer any client holds — checkpoint phase and hammer phase
    // alike — is on disk in the slow log, because the log write happens
    // before the answer frame is emitted. `--slow-ms 0` makes every
    // request "slow", so the log is a complete ledger.
    let slow = std::fs::read_to_string(&slow_path).expect("slow log exists");
    for line in slow.lines() {
        epre_serve::json::parse(line)
            .unwrap_or_else(|e| panic!("slow-log line is not valid JSON ({e}): {line}"));
    }
    for id in answered.iter().chain(&hammered) {
        assert!(
            slow.contains(&format!("\"request\":\"{id}\"")),
            "slow log must account for answered request {id}"
        );
    }
    assert!(!hammered.is_empty(), "the hammer must land at least one answer before the kill");

    let _ = std::fs::remove_file(&dump_path);
    let _ = std::fs::remove_file(&slow_path);
}
