//! Chaos campaign against the real `epre serve` daemon: kill it with
//! SIGKILL, tear its cache file, inject adversarial passes, and feed it
//! garbage frames. The invariants under every abuse are the ISSUE's
//! acceptance bar: **zero wrong answers** (every served module is
//! byte-identical to the in-process hardened optimizer, or provably
//! equivalent under the differential oracle), **zero hangs** (every
//! failure is a typed refusal or a bounded retry exhaustion), and
//! **bounded recovery** (a restart over crash wreckage serves correct
//! answers immediately).

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use epre_frontend::{compile, NamingMode};
use epre_harness::{compare_modules, FaultPolicy, Harness, OracleConfig};
use epre_ir::parse_module;
use epre_serve::{
    submit, ClientConfig, ClientError, OptimizeRequest, Response,
};
use epre::OptLevel;

/// Two functions so the cache holds more than one entry.
const SRC: &str = "function tri(n)\n\
                   integer n, s, i, tri\n\
                   begin\n\
                   s = 0\n\
                   do i = 1, n\n\
                     s = s + i\n\
                   enddo\n\
                   return s\n\
                   end\n\
                   function mix(a, b)\n\
                   real a, b, x\n\
                   begin\n\
                   x = a * b + a\n\
                   return x + a * b\n\
                   end\n";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("epre-chaos-{}-{name}", std::process::id()))
}

fn module_text() -> String {
    format!("{}", compile(SRC, NamingMode::Disciplined).unwrap())
}

/// A daemon child whose port was scraped from its stdout. Killed on drop
/// so a failing assertion cannot leak a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawn `epre serve --port 0 [extra...]` and wait for its
    /// `listening on <addr>` line (bounded, not forever).
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_epre"))
            .args(["serve", "--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn epre serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon stdout");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self) -> ClientConfig {
        ClientConfig {
            addr: self.addr.clone(),
            attempts: 3,
            base_backoff: Duration::from_millis(10),
            read_timeout: Duration::from_secs(30),
            ..Default::default()
        }
    }

    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL the daemon");
        self.child.wait().expect("reap the daemon");
    }

    fn shutdown(mut self) {
        epre_serve::shutdown(&self.client()).expect("shutdown ack");
        let status = self.child.wait().expect("reap the daemon");
        assert!(status.success(), "daemon must exit cleanly on shutdown");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn request(text: &str) -> OptimizeRequest {
    OptimizeRequest {
        client: "chaos".into(),
        level: "distribution".into(),
        policy: "best-effort".into(),
        deadline_ms: Some(60_000),
        idempotency: String::new(),
        module_text: text.to_string(),
    }
}

/// The campaign's spine: correct when healthy, correct from cache,
/// typed (not hung) while dead, correct again after restarting over a
/// SIGKILLed, hand-torn cache file.
#[test]
fn kill9_and_torn_cache_never_change_an_answer() {
    let cache = tmp("kill9.cache");
    let _ = std::fs::remove_file(&cache);
    let text = module_text();

    // Ground truth from the in-process hardened optimizer.
    let module = parse_module(&text).unwrap();
    let expected = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort)
        .optimize(&module)
        .unwrap();
    let expected_text = format!("{}", expected.module);

    let mut daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let cfg = daemon.client();

    let cold = submit(&cfg, &request(&text)).expect("cold submit");
    assert_eq!(cold.done.status, "clean");
    assert_eq!((cold.done.reused, cold.done.fresh), (0, 2));
    assert_eq!(cold.done.module_text, expected_text, "daemon answer == harness answer");

    let warm = submit(&cfg, &request(&text)).expect("warm submit");
    assert_eq!((warm.done.reused, warm.done.fresh), (2, 0));
    assert_eq!(warm.done.module_text, expected_text, "cache replay is byte-identical");
    assert_eq!(warm.done.idempotency, cold.done.idempotency);

    // Crash. A client against the corpse gets a typed error after a
    // bounded number of retries — never a hang.
    daemon.kill9();
    match submit(&cfg, &request(&text)) {
        Err(ClientError::Exhausted { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("expected bounded retry exhaustion, got {other:?}"),
    }

    // Tear the cache mid-record, as the kill could have. The recovered
    // entries must still be served byte-identically; the torn one is
    // recomputed, not trusted.
    let bytes = std::fs::read(&cache).unwrap();
    assert!(bytes.len() > 9, "cache file suspiciously small");
    std::fs::write(&cache, &bytes[..bytes.len() - 9]).unwrap();

    let daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let cfg = daemon.client();
    let recovered = submit(&cfg, &request(&text)).expect("post-crash submit");
    assert_eq!(recovered.done.status, "clean");
    assert_eq!(recovered.done.module_text, expected_text, "recovery never changes an answer");
    assert_eq!(
        (recovered.done.reused, recovered.done.fresh),
        (1, 1),
        "one entry survived the tear, one was recomputed"
    );
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);
}

/// Injected adversarial passes (the harness's fault models) degrade the
/// daemon's answers, never corrupt them: faults are reported, and the
/// served module stays observationally equivalent to the input.
#[test]
fn chaos_injection_degrades_but_never_lies() {
    let text = module_text();
    let module = parse_module(&text).unwrap();
    for model in ["nonterminating", "quadratic-growth"] {
        let daemon = Daemon::spawn(&["--chaos-inject", model]);
        let out = submit(&daemon.client(), &request(&text))
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert_eq!(out.done.status, "degraded", "{model}");
        assert!(out.done.faults >= 1, "{model}: the injected pass must fault");
        let served = parse_module(&out.done.module_text).unwrap();
        let divergences = compare_modules(&module, &served, &OracleConfig::default());
        assert!(divergences.is_empty(), "{model}: wrong answer under chaos: {divergences:?}");
        daemon.shutdown();
    }
}

/// The campaign at suite scale: the whole 50-routine module through the
/// real daemon — cold, warm, SIGKILLed and recovered, then under an
/// injected quadratic-growth pass — with byte-identity between every
/// clean answer and oracle equivalence for the degraded one.
#[test]
fn full_suite_campaign_survives_kill_and_injection() {
    use std::collections::HashSet;

    use epre_ir::{Inst, Module};

    // Fuse the suite as the throughput bench does: prefixed names keep
    // functions unique, local call targets follow.
    let mut fused = Module::new();
    for r in epre_suite::all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        let local: HashSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        fused.data_words = fused.data_words.max(m.data_words);
        for mut f in m.functions {
            f.name = format!("{}__{}", r.name, f.name);
            for block in &mut f.blocks {
                for inst in &mut block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if local.contains(callee.as_str()) {
                            *callee = format!("{}__{}", r.name, callee);
                        }
                    }
                }
            }
            fused.functions.push(f);
        }
    }
    let text = format!("{fused}");
    let n = fused.functions.len() as u64;

    let cache = tmp("suite.cache");
    let _ = std::fs::remove_file(&cache);
    let mut daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let cold = submit(&daemon.client(), &request(&text)).expect("cold suite submit");
    assert_eq!(cold.done.status, "clean");
    assert_eq!((cold.done.reused, cold.done.fresh), (0, n));

    // Crash and recover: every function must replay from the journaled
    // cache, byte-identically.
    daemon.kill9();
    let daemon = Daemon::spawn(&["--cache", cache.to_str().unwrap()]);
    let warm = submit(&daemon.client(), &request(&text)).expect("post-kill suite submit");
    assert_eq!(warm.done.status, "clean");
    assert_eq!((warm.done.reused, warm.done.fresh), (n, 0), "full recovery");
    assert_eq!(warm.done.module_text, cold.done.module_text, "recovery is byte-identical");
    daemon.shutdown();
    let _ = std::fs::remove_file(&cache);

    // Injection at suite scale: degraded accounting, equivalent module.
    let daemon = Daemon::spawn(&["--chaos-inject", "quadratic-growth"]);
    let out = submit(&daemon.client(), &request(&text)).expect("chaos suite submit");
    assert_eq!(out.done.status, "degraded");
    assert!(out.done.faults >= 1);
    let served = parse_module(&out.done.module_text).unwrap();
    let divergences = compare_modules(&fused, &served, &OracleConfig::default());
    assert!(divergences.is_empty(), "wrong answer at suite scale: {divergences:?}");
    daemon.shutdown();
}

/// Garbage on the wire gets a typed protocol refusal, and the daemon
/// keeps serving well-formed clients afterwards.
#[test]
fn garbage_frames_are_refused_typed_and_do_not_poison_the_daemon() {
    use std::io::Write;

    let daemon = Daemon::spawn(&[]);
    let mut stream = std::net::TcpStream::connect(&daemon.addr).expect("connect");
    stream.write_all(b"not a frame at all\n").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let frame = epre_serve::read_frame(&mut reader)
        .expect("typed response, not a dropped connection")
        .expect("a frame, not silence");
    match Response::decode(&frame) {
        Ok(Response::Error { code, .. }) => {
            assert_eq!(code.label(), "protocol");
        }
        other => panic!("expected a typed protocol error, got {other:?}"),
    }

    // The daemon is unharmed: a well-formed request still succeeds.
    let text = module_text();
    let out = submit(&daemon.client(), &request(&text)).expect("submit after garbage");
    assert_eq!(out.done.status, "clean");
    daemon.shutdown();
}
