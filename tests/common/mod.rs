//! Shared proptest generator for well-formed ILOC functions: a step list
//! is interpreted deterministically so every operand pick indexes the
//! registers of the right type produced so far, and the result always
//! type-checks (straight-line or diamond-shaped CFG).

use proptest::prelude::*;

use epre_ir::{BinOp, Const, Function, FunctionBuilder, Reg, Ty, UnOp};

/// One step of straight-line code generation: which instruction to append.
#[derive(Debug, Clone)]
pub enum Step {
    Bin(u8, u8, u8), // op selector, lhs pick, rhs pick
    Un(u8, u8),
    LoadI(i64),
    LoadF(i64), // float constant from an integer grid (exact)
    Copy(u8),
    Load(u8),
    Store(u8, u8),
    Call(u8),
}

pub fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| Step::Bin(o, a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(o, a)| Step::Un(o, a)),
        (-100i64..100).prop_map(Step::LoadI),
        (-100i64..100).prop_map(Step::LoadF),
        any::<u8>().prop_map(Step::Copy),
        any::<u8>().prop_map(Step::Load),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Store(a, b)),
        any::<u8>().prop_map(Step::Call),
    ]
}

/// Deterministically build a verified function from the step list.
pub fn build(steps: &[Step], diamond: bool) -> Function {
    let mut b = FunctionBuilder::new("gen", Some(Ty::Int));
    let p0 = b.param(Ty::Int);
    let p1 = b.param(Ty::Float);
    let mut ints: Vec<Reg> = vec![p0];
    let mut floats: Vec<Reg> = vec![p1];

    let int_ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max, BinOp::And,
                   BinOp::Or, BinOp::Xor, BinOp::CmpLt, BinOp::CmpEq];
    let float_ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max];

    let emit = |b: &mut FunctionBuilder, ints: &mut Vec<Reg>, floats: &mut Vec<Reg>, s: &Step| {
        match s {
            Step::Bin(o, x, y) => {
                if *o % 2 == 0 {
                    let op = int_ops[(*o as usize / 2) % int_ops.len()];
                    let l = ints[*x as usize % ints.len()];
                    let r = ints[*y as usize % ints.len()];
                    ints.push(b.bin(op, Ty::Int, l, r));
                } else {
                    let op = float_ops[(*o as usize / 2) % float_ops.len()];
                    let l = floats[*x as usize % floats.len()];
                    let r = floats[*y as usize % floats.len()];
                    let d = b.bin(op, Ty::Float, l, r);
                    if op.is_comparison() {
                        ints.push(d);
                    } else {
                        floats.push(d);
                    }
                }
            }
            Step::Un(o, x) => match o % 4 {
                0 => {
                    let s = ints[*x as usize % ints.len()];
                    ints.push(b.un(UnOp::Neg, Ty::Int, s));
                }
                1 => {
                    let s = ints[*x as usize % ints.len()];
                    ints.push(b.un(UnOp::Not, Ty::Int, s));
                }
                2 => {
                    let s = ints[*x as usize % ints.len()];
                    floats.push(b.un(UnOp::I2F, Ty::Int, s));
                }
                _ => {
                    let s = floats[*x as usize % floats.len()];
                    ints.push(b.un(UnOp::F2I, Ty::Float, s));
                }
            },
            Step::LoadI(v) => ints.push(b.loadi(Const::Int(*v))),
            Step::LoadF(v) => floats.push(b.loadi(Const::Float(*v as f64 / 4.0))),
            Step::Copy(x) => {
                let s = ints[*x as usize % ints.len()];
                ints.push(b.copy(s));
            }
            Step::Load(x) => {
                let a = ints[*x as usize % ints.len()];
                floats.push(b.load(Ty::Float, a));
            }
            Step::Store(x, y) => {
                let a = ints[*x as usize % ints.len()];
                let v = floats[*y as usize % floats.len()];
                b.store(Ty::Float, a, v);
            }
            Step::Call(x) => {
                let v = floats[*x as usize % floats.len()];
                floats.push(b.call("sqrt", vec![v], Ty::Float));
            }
        }
    };

    if diamond && steps.len() >= 2 {
        let half = steps.len() / 2;
        for s in &steps[..half] {
            emit(&mut b, &mut ints, &mut floats, s);
        }
        let cond = *ints.last().unwrap();
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(cond, t, e);
        let join_var = b.new_reg(Ty::Int);
        b.switch_to(t);
        let mut ti = ints.clone();
        let mut tf = floats.clone();
        for s in &steps[half..] {
            emit(&mut b, &mut ti, &mut tf, s);
        }
        b.copy_to(join_var, *ti.last().unwrap());
        b.jump(j);
        b.switch_to(e);
        b.copy_to(join_var, *ints.last().unwrap());
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(join_var));
    } else {
        for s in steps {
            emit(&mut b, &mut ints, &mut floats, s);
        }
        let out = *ints.last().unwrap();
        b.ret(Some(out));
    }
    b.finish()
}
