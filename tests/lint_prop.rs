#![cfg(feature = "prop-tests")]
// Gated: requires the proptest dev-dependency, which the offline build
// environment cannot fetch. Restore it in Cargo.toml and build with
// `--features prop-tests` to run these.

//! Property test for the lint framework (the pipeline-invariant
//! contract): over arbitrary well-formed generated functions, every
//! optimization level's pass sequence must keep the function lint-clean
//! after **every single pass** — checked with the same fingerprint-diffing
//! `verify_each` machinery the pipeline mode uses, so a failure blames the
//! offending pass by name in the counterexample.

use proptest::prelude::*;

use epre::{run_passes_verified, OptLevel, Optimizer};
use epre_lint::{lint_function, LintOptions};

mod common;
use common::{build, step_strategy};

const ALL_LEVELS: [OptLevel; 5] = [
    OptLevel::Baseline,
    OptLevel::Partial,
    OptLevel::Reassociation,
    OptLevel::Distribution,
    OptLevel::DistributionLvn,
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// The generator only builds invariant-clean functions, and no pass of
    /// any level may introduce an error-severity lint finding.
    #[test]
    fn every_pass_of_every_level_stays_lint_clean(
        steps in prop::collection::vec(step_strategy(), 0..24),
        diamond in any::<bool>(),
    ) {
        let f0 = build(&steps, diamond);
        let before = lint_function(&f0, &LintOptions::invariants_only());
        prop_assert!(!before.has_errors(), "generator produced bad IR:\n{before}");
        for level in ALL_LEVELS {
            let mut f = f0.clone();
            let passes = Optimizer::new(level).passes();
            let r = run_passes_verified(&mut f, &passes, &LintOptions::invariants_only());
            prop_assert!(r.is_ok(), "{}: {}", level.label(), r.unwrap_err());
        }
    }

    /// The full rule set (hygiene + dead values + the redundancy auditor)
    /// runs without crashing on the *final* output of every pipeline and
    /// reports no error-severity findings (hygiene/audit findings are
    /// warnings by design — e.g. Baseline runs no GVN and may leave
    /// redundancies for the auditor to flag).
    #[test]
    fn final_output_passes_the_full_audit(
        steps in prop::collection::vec(step_strategy(), 0..24),
        diamond in any::<bool>(),
    ) {
        let f0 = build(&steps, diamond);
        for level in ALL_LEVELS {
            let mut f = f0.clone();
            Optimizer::new(level).optimize_function(&mut f);
            let report = lint_function(&f, &LintOptions::default());
            prop_assert!(
                !report.has_errors(),
                "{} output has lint errors:\n{report}\n{f}",
                level.label()
            );
        }
    }
}
