#![cfg(feature = "prop-tests")]
// Gated: requires the proptest dev-dependency, which the offline build
// environment cannot fetch. Restore it in Cargo.toml and build with
// `--features prop-tests` to run these.

//! Per-pass semantic preservation: each optimization pass, applied alone
//! to randomly generated programs, must preserve the interpreter-observable
//! result exactly (integer programs). This isolates faults to a single
//! pass, unlike the whole-pipeline property tests.

use proptest::prelude::*;

use epre_frontend::{compile, NamingMode};
use epre_interp::{Interpreter, Value};
use epre_ir::Module;
use epre_passes::passes::{
    Clean, Coalesce, ConstProp, Dce, Gvn, Lvn, Peephole, Pre, Reassociate,
};
use epre_passes::Pass;

/// Random structured integer program, shared shape with
/// `equivalence_prop.rs` but kept deliberately independent (different
/// statement mix) so the two generators cover different corners.
fn program_strategy() -> impl Strategy<Value = String> {
    let expr = prop_oneof![
        Just("v0".to_string()),
        Just("v1".to_string()),
        Just("v2".to_string()),
        (0i64..30).prop_map(|n| n.to_string()),
    ]
    .prop_recursive(3, 16, 2, |inner| {
        (inner.clone(), prop_oneof![Just("+"), Just("-"), Just("*")], inner)
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    });

    let assign = (0..3usize, expr.clone()).prop_map(|(v, e)| format!("v{v} = {e}\n"));
    let cond = (expr.clone(), 0..3usize, expr.clone(), 0..3usize, expr.clone()).prop_map(
        |(c, v1, e1, v2, e2)| {
            format!("if {c} > 5 then\nv{v1} = {e1}\nelse\nv{v2} = {e2}\nendif\n")
        },
    );
    let dloop = (2i64..5, 0..3usize, expr.clone()).prop_map(|(n, v, e)| {
        format!("do k0 = 1, {n}\nv{v} = v{v} + {e}\nenddo\n")
    });

    prop::collection::vec(prop_oneof![3 => assign, 1 => cond, 1 => dloop], 1..7).prop_map(
        |stmts| {
            let mut s = String::from(
                "function f(v0, v1, v2)\ninteger f, v0, v1, v2, k0\nbegin\n",
            );
            for st in stmts {
                s.push_str(&st);
            }
            s.push_str("return v0 + 2 * v1 + 3 * v2\nend\n");
            s
        },
    )
}

fn result_of(m: &Module, args: &[Value]) -> Option<Value> {
    let mut i = Interpreter::new(m).with_fuel(1_000_000);
    i.run("f", args).expect("integer programs are total")
}

fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(Reassociate { distribute: false }),
        Box::new(Reassociate { distribute: true }),
        Box::new(Gvn),
        Box::new(Pre),
        Box::new(ConstProp),
        Box::new(Peephole),
        Box::new(Dce),
        Box::new(Coalesce),
        Box::new(Clean),
        Box::new(Lvn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn each_pass_alone_preserves_results(src in program_strategy(),
                                         a0 in -8i64..8, a1 in -8i64..8, a2 in -8i64..8,
                                         disciplined in any::<bool>()) {
        let mode = if disciplined { NamingMode::Disciplined } else { NamingMode::Simple };
        let module = compile(&src, mode).expect("generated programs compile");
        let args = [Value::Int(a0), Value::Int(a1), Value::Int(a2)];
        let expected = result_of(&module, &args);
        for pass in all_passes() {
            let mut m = module.clone();
            for f in &mut m.functions {
                pass.run(f);
                prop_assert!(f.verify().is_ok(), "{} broke the verifier on:\n{}", pass.name(), src);
            }
            let got = result_of(&m, &args);
            prop_assert_eq!(expected, got, "pass {} on ({},{},{}):\n{}", pass.name(), a0, a1, a2, src);
        }
    }

    /// Random pass *sequences* (the pipeline space) preserve results too —
    /// passes must compose in any order, like the paper's Unix filters.
    #[test]
    fn random_pass_sequences_preserve_results(src in program_strategy(),
                                              order in prop::collection::vec(0usize..10, 1..6),
                                              a0 in -8i64..8, a1 in -8i64..8) {
        let module = compile(&src, NamingMode::Disciplined).expect("compiles");
        let args = [Value::Int(a0), Value::Int(a1), Value::Int(2)];
        let expected = result_of(&module, &args);
        let passes = all_passes();
        let mut m = module.clone();
        for &i in &order {
            let pass = &passes[i % passes.len()];
            for f in &mut m.functions {
                pass.run(f);
            }
        }
        m.verify().expect("sequence result verifies");
        let got = result_of(&m, &args);
        prop_assert_eq!(expected, got, "sequence {:?} on:\n{}", order, src);
    }
}
