//! The live-metrics surface, end to end: the `metrics` protocol
//! request over real TCP, reconciliation against `--stats`, the
//! plain-HTTP scrape listener, and byte-identical traced serve runs
//! across `--jobs` values.

use std::io::{Read as _, Write as _};
use std::sync::{Arc, Mutex};

use epre_serve::client::{metrics as scrape_metrics, stats, submit, ClientConfig};
use epre_serve::{
    serve_metrics_http, serve_tcp, shutdown, OptimizeRequest, Request, Response, ResultCache,
    ServeConfig, ServerCore,
};

/// A unique straight-line module with a lexical redundancy (same shape
/// as the loadgen generator's cold traffic).
fn gen_function(id: u64) -> String {
    format!(
        "function met{id}(r0:i) -> i\n\
         block b0:\n\
         \x20 r1 <- loadi {}:i\n\
         \x20 r2 <- add.i r0, r1\n\
         \x20 r3 <- add.i r0, r1\n\
         \x20 r4 <- mul.i r2, r3\n\
         \x20 ret r4\n\
         end\n",
        id % 9973 + 1
    )
}

fn gen_module(ids: std::ops::Range<u64>) -> String {
    let mut text = String::from("module data 0\n");
    for id in ids {
        text.push_str(&gen_function(id));
    }
    text
}

fn request(text: String) -> OptimizeRequest {
    OptimizeRequest {
        client: "metrics-test".into(),
        level: "distribution".into(),
        policy: "best-effort".into(),
        deadline_ms: Some(60_000),
        idempotency: String::new(),
        request: String::new(),
        module_text: text,
    }
}

/// The value of a plain (unlabeled) series in a Prometheus text render.
fn series_value(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

#[test]
fn metrics_request_reconciles_with_stats_over_the_wire() {
    let core = Arc::new(ServerCore::new(ServeConfig::default(), ResultCache::in_memory()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || serve_tcp(core, listener))
    };
    let cfg = ClientConfig { addr, ..Default::default() };

    // One cold submit, then the identical module again — a warm replay.
    let req = request(gen_module(0..3));
    assert_eq!(submit(&cfg, &req).unwrap().done.status, "clean");
    assert_eq!(submit(&cfg, &req).unwrap().done.status, "clean");

    let text = scrape_metrics(&cfg, "text").unwrap();

    // The full schema is present: request counters, per-class latency
    // histograms with the fixed ladder, queue/worker gauges, per-pass
    // pipeline time from the timing decorator.
    for needle in [
        "# TYPE epre_requests_total counter",
        "# TYPE epre_request_latency_us histogram",
        "epre_request_latency_us_bucket{class=\"cold\",le=\"+Inf\"} 1",
        "epre_request_latency_us_bucket{class=\"warm\",le=\"+Inf\"} 1",
        "epre_request_latency_us_count{class=\"poison\"} 0",
        "epre_queue_depth",
        "epre_in_flight",
        "epre_workers_total",
        "epre_workers_saturated_total",
        "epre_slow_requests_total",
        "epre_pass_runs_total{pass=",
        "epre_pass_time_us_total{pass=",
    ] {
        assert!(text.contains(needle), "metrics render is missing `{needle}`:\n{text}");
    }

    // Reconciliation with `--stats`: the same counters, the same
    // values, because the render mirrors the stats snapshot rather than
    // double-counting. (Only traffic-driven counters are compared; the
    // scrape connections themselves bump the session counters between
    // the two reads.)
    let counters = stats(&cfg).unwrap();
    for name in ["requests", "completed", "cache_hits", "cache_misses", "shed_overload"] {
        let stat = counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap();
        let metric = series_value(&text, &format!("epre_{name}_total"));
        assert_eq!(metric, Some(stat), "`epre_{name}_total` must mirror stats `{name}`");
    }
    // Point-in-time stats render as gauges, not counters.
    assert!(text.contains("# TYPE epre_cache_entries gauge"));
    assert_eq!(
        series_value(&text, "epre_cache_entries"),
        counters.iter().find(|(k, _)| k == "cache_entries").map(|(_, v)| *v)
    );

    // The JSON render stays inside the protocol's integer-only JSON
    // subset — it parses with the workspace codec and carries the same
    // values.
    let json = scrape_metrics(&cfg, "json").unwrap();
    let parsed = epre_serve::json::parse(&json).expect("metrics JSON must parse");
    let list = parsed.get("metrics").and_then(|m| m.as_arr()).unwrap();
    let requests = list
        .iter()
        .find(|m| m.get("name").and_then(|n| n.as_str()) == Some("epre_requests_total"))
        .and_then(|m| m.get("value"))
        .and_then(|v| v.as_u64());
    assert_eq!(requests, series_value(&text, "epre_requests_total"));

    shutdown(&cfg).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn http_scrape_endpoint_answers_plain_get() {
    let core = Arc::new(ServerCore::new(ServeConfig::default(), ResultCache::in_memory()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || serve_metrics_http(listener, core))
    };

    let get = |path: &str| {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf
    };

    let ok = get("/metrics");
    assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
    assert!(ok.contains("Content-Type: text/plain; version=0.0.4"), "{ok}");
    let body = ok.split("\r\n\r\n").nth(1).unwrap();
    assert!(body.contains("epre_requests_total 0"), "{body}");
    let len: usize = ok
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    assert_eq!(len, body.len(), "Content-Length must match the body exactly");

    let missing = get("/anything-else");
    assert!(missing.starts_with("HTTP/1.0 404 Not Found\r\n"), "{missing}");

    // The scrape listener honors the core's shutdown like every other
    // listener.
    core.request_shutdown();
    handle.join().unwrap().unwrap();
}

/// A telemetry sink the test can read back after the core is dropped.
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn traced_serve_runs_are_byte_identical_across_request_jobs() {
    let run = |jobs: usize| -> Vec<u8> {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let mut core = ServerCore::new(
            ServeConfig { request_jobs: jobs, ..Default::default() },
            ResultCache::in_memory(),
        );
        core.attach_telemetry(Box::new(SharedSink(Arc::clone(&sink))));
        // A parallel-friendly cold request, a warm replay, and a second
        // distinct module: three traced requests per run.
        for text in [gen_module(0..6), gen_module(0..6), gen_module(6..9)] {
            let mut terminal = None;
            core.handle(&Request::Optimize(request(text)), &mut |resp| {
                terminal = Some(resp);
                Ok(())
            })
            .unwrap();
            match terminal {
                Some(Response::Done(d)) => assert_eq!(d.status, "clean"),
                other => panic!("expected done, got {other:?}"),
            }
        }
        drop(core);
        Arc::try_unwrap(sink).unwrap().into_inner().unwrap()
    };

    let at1 = run(1);
    let at2 = run(2);
    let at8 = run(8);
    assert!(!at1.is_empty(), "traced runs must emit telemetry");
    assert_eq!(at1, at2, "request_jobs must not leak into exported telemetry");
    assert_eq!(at1, at8, "request_jobs must not leak into exported telemetry");
    // The per-request lane is present and carries the span pipeline.
    let text = String::from_utf8(at1).unwrap();
    for needle in ["admission", "cache-probe", "governed-run", "oracle", "respond"] {
        assert!(text.contains(needle), "trace is missing the `{needle}` span:\n{text}");
    }
}
