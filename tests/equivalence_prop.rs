#![cfg(feature = "prop-tests")]
// Gated: requires the proptest dev-dependency, which the offline build
// environment cannot fetch. Restore it in Cargo.toml and build with
// `--features prop-tests` to run these.

//! Property-based testing: randomly generated structured programs must
//! compute identical results at every optimization level, and PRE must
//! never lengthen the executed path.
//!
//! The generator builds random mini-FORTRAN functions over integer
//! scalars (integers make equality exact — float reassociation
//! legitimately changes rounding) with nested `if`s, `do` loops and
//! shared subexpressions, then runs baseline vs. each level.

use proptest::prelude::*;

use epre::{Optimizer, OptLevel};
use epre_frontend::{compile, NamingMode};
use epre_interp::{ExecError, Interpreter, Value};
use epre_ir::Module;

/// A small expression AST rendered to mini-FORTRAN source.
#[derive(Debug, Clone)]
enum E {
    Var(usize),
    Num(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
}

impl E {
    fn render(&self, out: &mut String) {
        match self {
            E::Var(i) => out.push_str(&format!("v{i}")),
            E::Num(n) => {
                if *n < 0 {
                    out.push_str(&format!("(0 - {})", -n));
                } else {
                    out.push_str(&n.to_string());
                }
            }
            E::Add(a, b) => bin(out, a, "+", b),
            E::Sub(a, b) => bin(out, a, "-", b),
            E::Mul(a, b) => bin(out, a, "*", b),
            E::Min(a, b) => call(out, "min", a, b),
            E::Max(a, b) => call(out, "max", a, b),
        }
    }
}

fn bin(out: &mut String, a: &E, op: &str, b: &E) {
    out.push('(');
    a.render(out);
    out.push_str(&format!(" {op} "));
    b.render(out);
    out.push(')');
}

fn call(out: &mut String, name: &str, a: &E, b: &E) {
    out.push_str(name);
    out.push('(');
    a.render(out);
    out.push_str(", ");
    b.render(out);
    out.push(')');
}

#[derive(Debug, Clone)]
enum S {
    Assign(usize, E),
    If(E, Vec<S>, Vec<S>),
    Do(usize, i64, Vec<S>),
}

fn render_stmts(stmts: &[S], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for s in stmts {
        match s {
            S::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = "));
                e.render(out);
                out.push('\n');
            }
            S::If(c, t, e) => {
                out.push_str(&format!("{pad}if "));
                c.render(out);
                out.push_str(" > 0 then\n");
                render_stmts(t, depth + 1, out);
                if !e.is_empty() {
                    out.push_str(&format!("{pad}else\n"));
                    render_stmts(e, depth + 1, out);
                }
                out.push_str(&format!("{pad}endif\n"));
            }
            S::Do(v, n, body) => {
                // Loop variables are disjoint from data variables.
                out.push_str(&format!("{pad}do k{v} = 1, {n}\n"));
                render_stmts(body, depth + 1, out);
                out.push_str(&format!("{pad}enddo\n"));
            }
        }
    }
}

const NVARS: usize = 4;

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(E::Var),
        (-20i64..40).prop_map(E::Num),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<S> {
    if depth == 0 {
        (0..NVARS, expr_strategy()).prop_map(|(v, e)| S::Assign(v, e)).boxed()
    } else {
        // Each nesting depth owns one loop variable (k0, k1, k2), so
        // nested DOs never reuse a loop variable — reuse is illegal
        // FORTRAN and loops forever under rotated-loop lowering.
        let loop_var = depth as usize - 1;
        prop_oneof![
            3 => (0..NVARS, expr_strategy()).prop_map(|(v, e)| S::Assign(v, e)),
            1 => (
                expr_strategy(),
                prop::collection::vec(stmt_strategy(depth - 1), 1..3),
                prop::collection::vec(stmt_strategy(depth - 1), 0..2),
            )
                .prop_map(|(c, t, e)| S::If(c, t, e)),
            1 => (
                2i64..6,
                prop::collection::vec(stmt_strategy(depth - 1), 1..3),
            )
                .prop_map(move |(n, b)| S::Do(loop_var, n, b)),
        ]
        .boxed()
    }
}

fn program_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(stmt_strategy(2), 1..6).prop_map(|stmts| {
        let mut src = String::from("function f(v0, v1, v2, v3)\n");
        src.push_str("integer f, v0, v1, v2, v3, k0, k1, k2\nbegin\n");
        render_stmts(&stmts, 0, &mut src);
        // Combine all variables so everything is live.
        src.push_str("return v0 + 2 * v1 + 3 * v2 + 5 * v3\nend\n");
        src
    })
}

fn exec(m: &Module, args: &[Value]) -> Result<(Option<Value>, u64), ExecError> {
    let mut i = Interpreter::new(m).with_fuel(2_000_000);
    let r = i.run("f", args)?;
    Ok((r, i.counts().total))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    /// Every optimization level computes exactly the baseline's result on
    /// random integer programs (and when the unoptimized program traps —
    /// e.g. overflow-free here, so traps don't occur — levels are skipped).
    #[test]
    fn all_levels_preserve_semantics(src in program_strategy(),
                                     a0 in -10i64..10, a1 in -10i64..10,
                                     a2 in -10i64..10, a3 in -10i64..10) {
        let module = compile(&src, NamingMode::Disciplined).expect("generated programs compile");
        let args = [Value::Int(a0), Value::Int(a1), Value::Int(a2), Value::Int(a3)];
        let base = exec(&module, &args);
        // Programs are total (no division); any failure is a harness bug.
        let (r0, c0) = base.expect("unoptimized program runs");
        for level in OptLevel::PAPER_LEVELS {
            let opt = Optimizer::new(level).optimize(&module);
            opt.verify().expect("optimized module verifies");
            let (r1, c1) = exec(&opt, &args).expect("optimized program runs");
            prop_assert_eq!(r0, r1, "level {} on:\n{}", level.label(), src);
            // PRE alone never lengthens the path.
            if level == OptLevel::Partial {
                prop_assert!(c1 <= c0, "partial lengthened {} -> {} on:\n{}", c0, c1, src);
            }
        }
    }

    /// Both naming modes agree after full optimization.
    #[test]
    fn naming_modes_agree(src in program_strategy(),
                          a0 in -10i64..10, a1 in -10i64..10) {
        let args = [Value::Int(a0), Value::Int(a1), Value::Int(1), Value::Int(-2)];
        let mut results = Vec::new();
        for mode in [NamingMode::Simple, NamingMode::Disciplined] {
            let module = compile(&src, mode).expect("compiles");
            let opt = Optimizer::new(OptLevel::Distribution).optimize(&module);
            let (r, _) = exec(&opt, &args).expect("runs");
            results.push(r);
        }
        prop_assert_eq!(results[0], results[1], "on:\n{}", src);
    }
}
