#![cfg(feature = "prop-tests")]
// Gated: requires the proptest dev-dependency, which the offline build
// environment cannot fetch. Restore it in Cargo.toml and build with
// `--features prop-tests` to run these.

//! Property tests on the IR substrate itself: the textual ILOC format
//! round-trips arbitrary well-formed functions, the structural verifier
//! accepts everything the generator builds, and the cleanup-style passes
//! are idempotent.

use proptest::prelude::*;

use epre_ir::parse_function;
use epre_passes::passes::{Clean, Coalesce, Dce, Peephole};
use epre_passes::Pass;

mod common;
use common::{build, step_strategy};

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// print → parse is the identity on well-formed functions.
    #[test]
    fn text_format_round_trips(steps in prop::collection::vec(step_strategy(), 0..24),
                               diamond in any::<bool>()) {
        let f = build(&steps, diamond);
        prop_assert!(f.verify().is_ok());
        let text = format!("{f}");
        let g = parse_function(&text).expect("printed IR parses");
        prop_assert_eq!(&f, &g, "round trip changed the function:\n{}", text);
    }

    /// The cleanup passes are idempotent: a second application is a no-op.
    #[test]
    fn cleanup_passes_idempotent(steps in prop::collection::vec(step_strategy(), 0..24),
                                 diamond in any::<bool>()) {
        let mut f = build(&steps, diamond);
        for pass in [&Dce as &dyn Pass, &Peephole, &Coalesce, &Clean] {
            pass.run(&mut f);
            prop_assert!(f.verify().is_ok(), "{} broke the verifier", pass.name());
            let once = f.clone();
            pass.run(&mut f);
            prop_assert_eq!(&f, &once, "{} is not idempotent", pass.name());
        }
    }

    /// Static operation counts never grow under the baseline cleanup
    /// passes.
    #[test]
    fn cleanup_passes_never_grow_code(steps in prop::collection::vec(step_strategy(), 0..24),
                                      diamond in any::<bool>()) {
        let mut f = build(&steps, diamond);
        let mut prev = f.static_op_count();
        for pass in [&Dce as &dyn Pass, &Peephole, &Coalesce, &Clean] {
            pass.run(&mut f);
            let now = f.static_op_count();
            prop_assert!(now <= prev, "{} grew the code {prev} -> {now}", pass.name());
            prev = now;
        }
    }
}
