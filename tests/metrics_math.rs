//! The observability layer's arithmetic, pinned.
//!
//! Two families of guarantees live here:
//!
//! - the loadgen percentile math (`ClassStats::percentile_us`) against
//!   hand-computed nearest-rank values on known distributions, so a
//!   refactor cannot silently shift what "p99" means in
//!   `BENCH_SERVE.json`;
//! - property tests over the live-metrics histograms: bucket counts
//!   always sum to the observation count, merging commutes, and merged
//!   renders are byte-deterministic regardless of observation order,
//!   partitioning, or merge order. These are the properties the bench
//!   trajectory and the CI metrics grep rely on.
//!
//! The property tests use a seeded LCG rather than a proptest
//! dependency, matching the workspace's offline-registry constraint.

use epre_serve::ClassStats;
use epre_telemetry::{quantile_le, Histogram, MetricsRegistry, LATENCY_BUCKETS_US};

fn stats(mut latencies_us: Vec<u64>) -> ClassStats {
    latencies_us.sort_unstable();
    ClassStats { ops: latencies_us.len() as u64, latencies_us, ..Default::default() }
}

#[test]
fn loadgen_percentiles_pin_a_known_distribution() {
    // 1..=100: nearest-rank on 100 samples. idx = round(99 * p / 100).
    let uniform = stats((1..=100).collect());
    assert_eq!(uniform.percentile_us(0.0), 1);
    assert_eq!(uniform.percentile_us(50.0), 51); // round(49.5) = 50 -> value 51
    assert_eq!(uniform.percentile_us(95.0), 95); // round(94.05) = 94 -> value 95
    assert_eq!(uniform.percentile_us(99.0), 99); // round(98.01) = 98 -> value 99
    assert_eq!(uniform.percentile_us(100.0), 100);

    // A long-tailed distribution: the tail only shows up at p99.
    let skewed = stats(vec![10, 10, 10, 1_000]);
    assert_eq!(skewed.percentile_us(50.0), 10);
    assert_eq!(skewed.percentile_us(99.0), 1_000);

    // Degenerate sizes: one sample answers every percentile; zero
    // samples answer 0, not a panic.
    let single = stats(vec![42]);
    assert_eq!(single.percentile_us(50.0), 42);
    assert_eq!(single.percentile_us(99.0), 42);
    assert_eq!(ClassStats::default().percentile_us(99.0), 0);
}

/// Deterministic pseudo-random stream; same constants as the other
/// seeded generators in the workspace (LCG from Numerical Recipes).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    /// A latency-shaped value: uniform mantissa scaled by a random
    /// power of two, so every bucket of the ladder sees traffic.
    fn latency_us(&mut self) -> u64 {
        let shift = self.next() % 28; // up to ~268s: exercises overflow
        (self.next() % 1_000) << shift
    }
}

#[test]
fn histogram_bucket_counts_sum_to_observation_count() {
    let mut rng = Lcg(0xE9_7E);
    for case in 0..50 {
        let h = Histogram::default();
        let n = (rng.next() % 200) as usize;
        let mut expected_sum = 0u64;
        for _ in 0..n {
            let v = rng.latency_us();
            expected_sum += v;
            h.observe(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), LATENCY_BUCKETS_US.len() + 1, "ladder plus overflow");
        assert_eq!(
            counts.iter().sum::<u64>(),
            n as u64,
            "case {case}: bucket counts must sum to the observation count"
        );
        assert_eq!(h.count(), n as u64);
        assert_eq!(h.sum(), expected_sum);
    }
}

#[test]
fn every_observation_lands_in_the_bucket_its_bound_names() {
    // Boundary semantics: bucket i counts v <= bound[i] (and > bound[i-1]);
    // values past the last bound land in the overflow cell.
    for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
        let h = Histogram::default();
        h.observe(bound); // exactly on the bound: le includes it
        assert_eq!(h.bucket_counts()[i], 1, "bound {bound} must count in its own bucket");
    }
    let h = Histogram::default();
    h.observe(LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1] + 1);
    assert_eq!(*h.bucket_counts().last().unwrap(), 1, "past the ladder lands in overflow");
}

#[test]
fn merged_histogram_renders_are_byte_deterministic() {
    let mut rng = Lcg(0xBEEF);
    for case in 0..20 {
        let values: Vec<u64> = (0..(rng.next() % 150)).map(|_| rng.latency_us()).collect();

        // One histogram observing in order.
        let direct = Histogram::default();
        for &v in &values {
            direct.observe(v);
        }

        // Three shards observing a partition of the same multiset, in
        // reversed order, merged in a scrambled order.
        let shards = [Histogram::default(), Histogram::default(), Histogram::default()];
        for (i, &v) in values.iter().rev().enumerate() {
            shards[i % 3].observe(v);
        }
        let merged = Histogram::default();
        for idx in [2, 0, 1] {
            merged.merge_from(&shards[idx]);
        }

        assert_eq!(merged.bucket_counts(), direct.bucket_counts(), "case {case}");
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.sum(), direct.sum());

        // The render is a pure function of the observed multiset: two
        // registries reached by different paths emit identical bytes.
        let render = |h: &Histogram| {
            let reg = MetricsRegistry::new();
            let handle = reg.histogram("epre_test_latency_us", "test histogram");
            handle.merge_from(h);
            let snap = reg.snapshot();
            (snap.to_text(), snap.to_json())
        };
        assert_eq!(render(&direct), render(&merged), "case {case}: renders must be byte-equal");
    }
}

#[test]
fn quantile_le_matches_a_brute_force_reference() {
    let mut rng = Lcg(0x51DE);
    for case in 0..30 {
        let values: Vec<u64> = (0..(rng.next() % 120 + 1)).map(|_| rng.latency_us()).collect();
        let h = Histogram::default();
        for &v in &values {
            h.observe(v);
        }
        let counts = h.bucket_counts();
        for (num, den) in [(50u64, 100u64), (95, 100), (99, 100), (1, 1)] {
            // Reference: nearest-rank over per-value bucket *bounds* —
            // the smallest ladder bound at or above each observation,
            // with overflow sorting above every finite bound.
            let mut bounded: Vec<u64> = values
                .iter()
                .map(|&v| {
                    LATENCY_BUCKETS_US.iter().copied().find(|&b| b >= v).unwrap_or(u64::MAX)
                })
                .collect();
            bounded.sort_unstable();
            let rank = (values.len() as u64 * num).div_ceil(den).max(1) as usize;
            let expected = Some(bounded[rank - 1]).filter(|&b| b != u64::MAX);
            assert_eq!(
                quantile_le(&LATENCY_BUCKETS_US, &counts, num, den),
                expected,
                "case {case}: q={num}/{den} over {} values",
                values.len()
            );
        }
    }
    // Empty histograms have no quantiles, not a zero.
    assert_eq!(quantile_le(&LATENCY_BUCKETS_US, &[0; 27], 99, 100), None);
}
