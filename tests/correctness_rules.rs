//! §5.1 of the paper: "an expression defined in one basic block may not
//! be referenced in another basic block" — the unstated PRE correctness
//! requirement the authors "have never seen ... stated in the literature".
//!
//! The paper's example: `r10 <- sqrt(r9)` computed before a branch, with
//! `r10` used on one arm after `r9` is redefined. If PRE hoisted a
//! recomputation of the expression past the use, the use would read the
//! wrong value. Our pipeline respects the rule two ways: the disciplined
//! front end keeps expression names block-local, and forward propagation
//! enforces it for everything else. These tests build the dangerous shape
//! *by hand* and check PRE stays sound.

use epre_interp::{Interpreter, Value};
use epre_ir::{BinOp, Const, FunctionBuilder, Inst, Module, Ty};
use epre_passes::passes::Pre;
use epre_passes::Pass;

/// The §5.1 shape with an arithmetic expression standing in for sqrt
/// (calls are never PRE candidates in this pipeline, which is itself a
/// §5.1-motivated design decision — so exercise the rule with `add`):
///
/// ```text
/// b0: n  <- x + y          (expression name n, defined here)
///     cbr p -> b1, b2
/// b1: x <- 1000            (kills the expression's operand)
///     n2 <- x + y          (same lexical expression, x changed)
///     jump b2
/// b2: use n                (old value! n is live across blocks)
/// ```
///
/// The expression name `n` is live across the block boundary — exactly
/// what the rule forbids. PRE must not insert or delete in a way that
/// clobbers `n`'s value on the `p` path. (Here the two occurrences have
/// different destinations, so they are *undisciplined* and PRE refuses to
/// touch them — the mechanism that makes the rule hold.)
#[test]
fn live_expression_name_across_blocks_is_not_clobbered() {
    let build = || {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let n = b.bin(BinOp::Add, Ty::Int, x, y);
        let b1 = b.new_block();
        let b2 = b.new_block();
        b.branch(p, b1, b2);
        b.switch_to(b1);
        let big = b.loadi(Const::Int(1000));
        b.copy_to(x, big);
        let n2 = b.bin(BinOp::Add, Ty::Int, x, y);
        let _ = n2;
        b.jump(b2);
        b.switch_to(b2);
        // Use the *old* n: its value must be x_original + y.
        b.ret(Some(n));
        b.finish()
    };

    let orig = build();
    let mut optimized = build();
    Pre.run(&mut optimized);
    optimized.verify().unwrap();

    for p in [0i64, 1] {
        let args = [Value::Int(3), Value::Int(4), Value::Int(p)];
        let mut m0 = Module::new();
        m0.functions.push(orig.clone());
        let mut m1 = Module::new();
        m1.functions.push(optimized.clone());
        let r0 = Interpreter::new(&m0).run("f", &args).unwrap();
        let r1 = Interpreter::new(&m1).run("f", &args).unwrap();
        assert_eq!(r0, r1, "p = {p}");
        assert_eq!(r1, Some(Value::Int(7)), "old value of n survives the branch");
    }
}

/// Calls (the paper's literal `sqrt` case) are opaque to PRE by
/// construction: no call is ever moved, inserted or deleted.
#[test]
fn calls_are_never_pre_candidates() {
    let mut b = FunctionBuilder::new("g", Some(Ty::Float));
    let x = b.param(Ty::Float);
    let p = b.param(Ty::Int);
    let s1 = b.call("sqrt", vec![x], Ty::Float);
    let b1 = b.new_block();
    let b2 = b.new_block();
    b.branch(p, b1, b2);
    b.switch_to(b1);
    let s2 = b.call("sqrt", vec![x], Ty::Float);
    let t = b.bin(BinOp::Add, Ty::Float, s1, s2);
    b.ret(Some(t));
    b.switch_to(b2);
    b.ret(Some(s1));
    let mut f = b.finish();
    let calls_before =
        f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Call { .. })).count();
    Pre.run(&mut f);
    let calls_after =
        f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Call { .. })).count();
    assert_eq!(calls_before, calls_after, "{f}");
}

/// The front end's disciplined lowering keeps every expression name
/// block-local: all uses of an expression register sit in the block that
/// (re)computes it. This is the §2.2/§5.1 invariant PRE relies on.
#[test]
fn disciplined_frontend_keeps_expression_names_block_local() {
    let src = "function f(a, b, n)\n\
               real a, b, t\n\
               integer n, i\n\
               begin\n\
               t = 0\n\
               do i = 1, n\n\
                 t = t + a * b\n\
                 if t > 10.0 then\n\
                   t = t - a * b\n\
                 endif\n\
               enddo\n\
               return t\n\
               end\n";
    let m = epre_frontend::compile(src, epre_frontend::NamingMode::Disciplined).unwrap();
    let f = m.function("f").unwrap();
    // For every *expression* register (defined by Bin/Un/LoadI), every use
    // must be preceded by a definition in the same block.
    use std::collections::HashSet;
    let mut expr_regs: HashSet<epre_ir::Reg> = HashSet::new();
    for block in &f.blocks {
        for inst in &block.insts {
            if inst.is_expression() {
                expr_regs.insert(inst.dst().unwrap());
            }
        }
    }
    for (bid, block) in f.iter_blocks() {
        let mut defined: HashSet<epre_ir::Reg> = HashSet::new();
        let check = |r: &epre_ir::Reg, defined: &HashSet<epre_ir::Reg>| {
            assert!(
                !expr_regs.contains(r) || defined.contains(r),
                "expression name {r} used in {bid} without a local definition"
            );
        };
        for inst in &block.insts {
            for u in inst.uses() {
                check(&u, &defined);
            }
            if let Some(d) = inst.dst() {
                defined.insert(d);
            }
        }
        for u in block.term.uses() {
            check(&u, &defined);
        }
    }
}
