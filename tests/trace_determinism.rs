//! Deterministic trace merging: the telemetry trace an optimization run
//! exports must be **byte-identical** across `--jobs` values — same
//! events, same order, same serialized bytes — at every optimization
//! level, over the whole 50-routine suite.
//!
//! This is the observability twin of `parallel_equivalence.rs`: worker
//! scheduling must never leak into the exported trace. Lanes are keyed by
//! module position and merged in module order, and every exported number
//! is virtual (derived from pass input sizes), so the JSON Lines and
//! Chrome `trace_event` renderings match byte for byte no matter how the
//! work was scheduled.

use epre::{OptLevel, Optimizer};
use epre_frontend::NamingMode;

const ALL_LEVELS: [OptLevel; 5] = [
    OptLevel::Baseline,
    OptLevel::Partial,
    OptLevel::Reassociation,
    OptLevel::Distribution,
    OptLevel::DistributionLvn,
];

#[test]
fn suite_traces_are_byte_identical_across_jobs() {
    for r in epre_suite::all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap();
        for level in ALL_LEVELS {
            let opt = Optimizer::new(level);
            let (serial_out, serial_trace) =
                opt.try_optimize_traced(&m, 1, false).unwrap_or_else(|f| panic!("{f}"));
            let serial_jsonl = serial_trace.to_jsonl();
            let serial_chrome = serial_trace.to_chrome();
            for jobs in [2, 8] {
                let (out, trace) =
                    opt.try_optimize_traced(&m, jobs, false).unwrap_or_else(|f| panic!("{f}"));
                assert_eq!(
                    format!("{serial_out}"),
                    format!("{out}"),
                    "{} at {level:?}, jobs={jobs}: traced module must match serial",
                    r.name
                );
                assert_eq!(
                    serial_jsonl,
                    trace.to_jsonl(),
                    "{} at {level:?}, jobs={jobs}: JSONL trace must be byte-identical",
                    r.name
                );
                assert_eq!(
                    serial_chrome,
                    trace.to_chrome(),
                    "{} at {level:?}, jobs={jobs}: Chrome trace must be byte-identical",
                    r.name
                );
            }
        }
    }
}

/// The exported streams carry the schema the CI sanity check greps for:
/// a dense `seq`, and a non-empty `pass` and `function` on every line.
#[test]
fn suite_trace_schema_is_well_formed() {
    let r = &epre_suite::all_routines()[0];
    let m = r.compile(NamingMode::Disciplined).unwrap();
    let opt = Optimizer::new(OptLevel::Distribution);
    let (_, trace) = opt.try_optimize_traced(&m, 2, false).unwrap_or_else(|f| panic!("{f}"));
    assert!(!trace.events.is_empty());
    for (i, e) in trace.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "seq must be dense");
        assert!(!e.pass.is_empty(), "event {i} has an empty pass");
        assert!(!e.function.is_empty() || e.pass == "pipeline" || e.pass == "harness");
    }
    for (i, line) in trace.to_jsonl().lines().enumerate() {
        assert!(line.starts_with(&format!("{{\"seq\":{i},")), "line {i}: {line}");
        assert!(line.contains("\"pass\":"), "line {i}: {line}");
        assert!(line.contains("\"function\":"), "line {i}: {line}");
    }
    let chrome = trace.to_chrome();
    assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
    assert!(chrome.contains("\"ph\":\"X\""), "chrome trace must carry spans");
    assert!(chrome.contains("\"ph\":\"M\""), "chrome trace must name its lanes");
    assert!(chrome.trim_end().ends_with("]}"), "chrome trace must close its array");
}
