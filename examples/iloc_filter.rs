//! The paper's pass structure, literally: "each pass is a Unix filter
//! that consumes and produces ILOC". This binary reads textual ILOC from
//! stdin (or compiles a built-in demo if stdin is a TTY/empty), applies
//! the pass named on the command line, and prints the resulting ILOC.
//!
//! ```text
//! cargo run --example iloc_filter -- reassociate < in.iloc |
//! cargo run --example iloc_filter -- gvn |
//! cargo run --example iloc_filter -- pre
//! ```
//!
//! Pass names: reassociate, distribute, gvn, pre, constprop, peephole,
//! dce, coalesce, clean, lvn.

use std::io::Read;

use epre_ir::parse_module;
use epre_passes::passes::*;
use epre_passes::Pass;

fn pass_by_name(name: &str) -> Option<Box<dyn Pass>> {
    Some(match name {
        "reassociate" => Box::new(Reassociate { distribute: false }),
        "distribute" => Box::new(Reassociate { distribute: true }),
        "gvn" => Box::new(Gvn),
        "pre" => Box::new(Pre),
        "constprop" => Box::new(ConstProp),
        "peephole" => Box::new(Peephole),
        "dce" => Box::new(Dce),
        "coalesce" => Box::new(Coalesce),
        "clean" => Box::new(Clean),
        "lvn" => Box::new(Lvn),
        _ => return None,
    })
}

const DEMO: &str = "module data 0\n\
                    function demo(r0:i, r1:i) -> i\n\
                    block b0:\n  r2 <- add.i r0, r1\n  r3 <- add.i r0, r1\n  r4 <- mul.i r2, r3\n  ret r4\n\
                    end\n";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(pass) = args.first().and_then(|n| pass_by_name(n)) else {
        eprintln!(
            "usage: iloc_filter <pass> [< input.iloc]\n\
             passes: reassociate distribute gvn pre constprop peephole dce coalesce clean lvn"
        );
        std::process::exit(2);
    };

    let mut input = String::new();
    std::io::stdin().read_to_string(&mut input).expect("read stdin");
    if input.trim().is_empty() {
        input = DEMO.to_string();
        eprintln!("(no input on stdin; using the built-in demo module)");
    }

    let mut module = match parse_module(&input) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    for f in &mut module.functions {
        pass.run(f);
    }
    if let Err(e) = module.verify() {
        eprintln!("pass `{}` produced invalid ILOC: {e}", pass.name());
        std::process::exit(1);
    }
    print!("{module}");
}
