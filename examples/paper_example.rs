//! The paper's complete walkthrough, Figures 2 through 10: the function
//! `foo` of Figure 2 is taken through every stage of the pipeline, and
//! the IR is printed after each stage so the transformations can be read
//! side by side with the paper.
//!
//! Run with: `cargo run --example paper_example`

use epre::stages::{run_staged, Stage};
use epre_frontend::{compile, NamingMode};
use epre_interp::{Interpreter, Value};

fn main() {
    // Figure 2: Source Code. (The paper's FORTRAN, transcribed.)
    let source = "function foo(y, z)\n\
                  real y, z, s, x\n\
                  integer i\n\
                  begin\n\
                  s = 0\n\
                  x = y + z\n\
                  do i = x, 100\n\
                    s = i + s + x\n\
                  enddo\n\
                  return s\n\
                  end\n";
    println!("Figure 2: Source Code\n\n{source}");

    // Figure 3's translation "does not conform to the naming discipline",
    // so lower with Simple naming, as the paper does.
    let module = compile(source, NamingMode::Simple).expect("compiles");
    let routine = module.function("foo").unwrap();

    let staged = run_staged(routine, true);
    for (_, description, f) in &staged.snapshots {
        println!("{description}\n\n{f}\n");
    }

    // "Taken together, the sequence of transformations reduced the length
    // of the loop ... without increasing the length of any path through
    // the routine."
    let args = [Value::Float(1.0), Value::Float(2.0)];
    let mut m_before = epre_ir::Module::new();
    m_before.functions.push(staged.stage(Stage::Intermediate).clone());
    let mut m_after = epre_ir::Module::new();
    m_after.functions.push(staged.stage(Stage::Final).clone());
    let mut i_before = Interpreter::new(&m_before);
    let mut i_after = Interpreter::new(&m_after);
    let r0 = i_before.run("foo", &args).unwrap();
    let r1 = i_after.run("foo", &args).unwrap();
    assert_eq!(r0, r1, "semantics preserved");
    println!(
        "dynamic operations: {} before, {} after ({} saved); result {} both times",
        i_before.counts().total,
        i_after.counts().total,
        i_before.counts().total - i_after.counts().total,
        r1.unwrap(),
    );
}
