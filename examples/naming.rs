//! §2.2 and §3.2 of the paper: how the *choice of names* limits PRE, and
//! how global value numbering repairs it.
//!
//! The paper's example:
//!
//! ```fortran
//! x = y + z
//! a = y
//! b = a + z
//! ```
//!
//! `y + z` and `a + z` are the same value, but PRE "cannot discover this
//! fact" — the expressions are not lexically identical. Partition-based
//! global value numbering proves `a ≅ y`, renames, and suddenly PRE (here:
//! even simple availability-based CSE) sees two occurrences of one
//! expression.
//!
//! Run with: `cargo run --example naming`

use epre_frontend::{compile, NamingMode};
use epre_ir::{BinOp, Inst};
use epre_passes::passes::{Coalesce, Dce, Gvn, Pre};
use epre_passes::Pass;

const SRC: &str = "function f(y, z)\n\
                   real y, z, x, a, b\n\
                   begin\n\
                   x = y + z\n\
                   a = y\n\
                   b = a + z\n\
                   return x * b\n\
                   end\n";

fn count_adds(f: &epre_ir::Function) -> usize {
    f.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
        .count()
}

fn main() {
    let module = compile(SRC, NamingMode::Disciplined).expect("compiles");
    let f0 = module.function("f").unwrap().clone();
    println!("lowered (naming discipline, but `a + z` ≠ `y + z` lexically):\n\n{f0}\n");

    // PRE alone: the redundancy is invisible.
    let mut pre_only = f0.clone();
    Pre.run(&mut pre_only);
    Dce.run(&mut pre_only);
    Coalesce.run(&mut pre_only);
    println!("after PRE alone: {} adds (nothing found)\n", count_adds(&pre_only));

    // GVN first: a ≅ y, so `a + z` is renamed to the name of `y + z`;
    // then PRE deletes the recomputation.
    let mut gvn_pre = f0.clone();
    Gvn.run(&mut gvn_pre);
    println!("after GVN renaming:\n\n{gvn_pre}\n");
    Pre.run(&mut gvn_pre);
    Dce.run(&mut gvn_pre);
    Coalesce.run(&mut gvn_pre);
    println!("after GVN + PRE: {} add remains\n\n{gvn_pre}", count_adds(&gvn_pre));

    assert_eq!(count_adds(&pre_only), 2);
    assert_eq!(count_adds(&gvn_pre), 1);
}
