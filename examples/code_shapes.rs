//! Figure 1 and §2.1 of the paper: the three-address shapes of
//! `x + y + z` and their consequences.
//!
//! With `rx = 3`, `rz = 2` and `ry` a variable, only the shape that groups
//! the constants lets constant propagation rewrite the expression as
//! `y + 5`. Reassociation produces that shape automatically by giving
//! constants rank 0 and sorting them together.
//!
//! Run with: `cargo run --example code_shapes`

use epre_ir::{BinOp, Const, FunctionBuilder, Inst, Ty};
use epre_passes::passes::{ConstProp, Dce, Peephole, Reassociate};
use epre_passes::Pass;

/// Build `(x + y) + z` — the left-leaning shape of Figure 1 — with
/// x = 3 and z = 2 constant.
fn left_leaning() -> epre_ir::Function {
    let mut b = FunctionBuilder::new("shape", Some(Ty::Int));
    let y = b.param(Ty::Int);
    let x = b.loadi(Const::Int(3));
    let t = b.bin(BinOp::Add, Ty::Int, x, y);
    let z = b.loadi(Const::Int(2));
    let u = b.bin(BinOp::Add, Ty::Int, t, z);
    b.ret(Some(u));
    b.finish()
}

fn count_adds(f: &epre_ir::Function) -> usize {
    f.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
        .count()
}

fn main() {
    let original = left_leaning();
    println!("Figure 1, shape ((3 + y) + 2) — constants apart:\n\n{original}\n");

    // Constant propagation alone cannot fold anything: no operation has
    // two constant operands.
    let mut without = original.clone();
    ConstProp.run(&mut without);
    Peephole.run(&mut without);
    Dce.run(&mut without);
    println!(
        "after constprop+peephole+dce WITHOUT reassociation: {} adds remain\n\n{without}\n",
        count_adds(&without)
    );

    // Reassociation sorts by rank — constants (rank 0) group together —
    // and then the same constant propagation folds 3 + 2.
    let mut with = original.clone();
    Reassociate { distribute: false }.run(&mut with);
    ConstProp.run(&mut with);
    Peephole.run(&mut with);
    Dce.run(&mut with);
    println!(
        "after reassociation + the same passes: {} add remains\n\n{with}\n",
        count_adds(&with)
    );

    assert_eq!(count_adds(&without), 2);
    assert_eq!(count_adds(&with), 1, "3 + 2 folded; only y + 5 remains");
    println!("reassociation exposed the constant fold: x + y + z became y + 5");
}
