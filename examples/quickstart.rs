//! Quickstart: compile a mini-FORTRAN routine, optimize it at every level
//! of Briggs & Cooper's pipeline, and compare dynamic operation counts —
//! the paper's Table 1 metric — on a single routine.
//!
//! Run with: `cargo run --example quickstart`

use epre::{measure_module, OptLevel};
use epre_frontend::{compile, NamingMode};

fn main() {
    // The paper's running example (Figure 2).
    let source = "function foo(y, z)\n\
                  real y, z, s, x\n\
                  integer i\n\
                  begin\n\
                  s = 0\n\
                  x = y + z\n\
                  do i = x, 100\n\
                    s = i + s + x\n\
                  enddo\n\
                  return s\n\
                  end\n";

    let module = compile(source, NamingMode::Disciplined).expect("compiles");
    println!("ILOC after lowering:\n{}\n", module.functions[0]);

    let args = [epre_interp::Value::Float(1.0), epre_interp::Value::Float(2.0)];
    let measurements = measure_module(&module, "foo", &args).expect("runs");

    println!("{:16} {:>10} {:>12}", "level", "dynamic ops", "result");
    for m in &measurements {
        println!(
            "{:16} {:>10} {:>12}",
            m.level.label(),
            m.counts.total,
            m.result.map(|v| v.to_string()).unwrap_or_default()
        );
    }

    let base = measurements.iter().find(|m| m.level == OptLevel::Baseline).unwrap();
    let pre = measurements.iter().find(|m| m.level == OptLevel::Partial).unwrap();
    println!(
        "\nPRE removed {} dynamic operations ({:.0}%).",
        base.counts.total - pre.counts.total,
        100.0 * (base.counts.total - pre.counts.total) as f64 / base.counts.total as f64
    );
}
